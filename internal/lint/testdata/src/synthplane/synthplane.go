// Package synthplane mirrors the synthetic-workload engine's position
// in the stack for the analyzers: an application-layer package sits
// ABOVE the I/O library, so its exported entry points legitimately
// carry *sim.Proc (MPI-style rank procedures) — reqpath must stay
// quiet about them — while the determinism and unit-safety contracts
// still bind it like every other internal package: spec compilation
// and trace inference feed byte-identical reports.
package synthplane

import (
	"fmt"
	"sort"
	"time"

	"fixture/internal/sim"
)

// Spec is a miniature workload spec.
type Spec struct {
	Phases map[string]int
}

// Run is the engine entry point: a proc parameter on an
// application-layer exported function is the MPI idiom, not a
// request-path violation.
func Run(p *sim.Proc, s *Spec) string { return p.Name() }

// rankStep is an unexported per-rank helper; also fine.
func rankStep(p *sim.Proc, iter int) {}

// ChainSorted collects the phase names deterministically: collect,
// then sort — the sanctioned idiom.
func ChainSorted(s *Spec) []string {
	var names []string
	for name := range s.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ChainUnsorted leaks map order into the returned chain: compiled
// phase order would differ run to run.
func ChainUnsorted(s *Spec) []string {
	var names []string
	for name := range s.Phases { // want determinism "never sorted afterwards"
		names = append(names, name)
	}
	return names
}

// FirstPhase picks "the" first phase from a map — a nondeterministic
// choice of workload entry point.
func FirstPhase(s *Spec) string {
	for name := range s.Phases { // want determinism "returns from inside the loop"
		return name
	}
	return ""
}

// StampSpec reads the wall clock into a spec artifact; replays would
// never be byte-identical.
func StampSpec(s *Spec) string {
	return fmt.Sprint(time.Now()) // want determinism "reads the wall clock"
}

// mixedUnits slips a KiB-suffixed stride into a bytes slot — the
// classic off-by-1024 the spec fields' *_bytes naming exists to stop.
func mixedUnits(blockBytes, strideKiB int64) int64 {
	return blockBytes + strideKiB // want unitflow "mixes Bytes and KiB"
}
