// Package seedsrc is the taint-source side of the seedflow fixtures:
// it reads the wall clock behind exported functions, including one
// that launders the value through an intermediate before it crosses
// the package boundary.
package seedsrc

import "time"

// Stamp returns a raw wall-clock timestamp (the taint source).
func Stamp() float64 {
	return float64(time.Now().UnixNano())
}

// LaunderedStamp hides the wall-clock read behind an intermediate
// local and function: the taint must survive both.
func LaunderedStamp() float64 {
	v := Stamp()
	return passthrough(v)
}

// passthrough is the intermediate the taint flows through.
func passthrough(v float64) float64 { return v }

// Tick returns a deterministic engine-style value (untainted).
func Tick() float64 { return 42 }
