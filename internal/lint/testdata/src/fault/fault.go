// Package fault is a miniature stand-in for the fault-injection
// plane — enough surface (Plan, Event, Kind, Apply) for the
// faultplan fixtures to type-check and for the analyzer to compute
// plan-consumer facts the same way it does on the real module.
package fault

// Kind is the fault class of one event.
type Kind int

// Fault kinds.
const (
	DiskFail Kind = iota
	NetFlap
	NFSStall
)

// Event is one scheduled fault.
type Event struct {
	At       int64
	Kind     Kind
	Factor   float64
	Duration int64
}

// Plan is a named, seeded schedule of faults.
type Plan struct {
	Name   string
	Seed   int64
	Events []Event
}

// Cluster is the arming target.
type Cluster struct{}

// Injector is an armed plan.
type Injector struct{ plan Plan }

// Apply arms the plan on the cluster (stores it — the base consumer
// the inductive consumes-facts bottom out on).
func Apply(c *Cluster, pl Plan) *Injector {
	return &Injector{plan: pl}
}
