// Package telemetry is a miniature stand-in for the real telemetry
// plane — just enough surface (Recorder, Probe, Registry.Register)
// for the probeconform fixtures to type-check.
package telemetry

// Snapshot is one probe observation.
type Snapshot struct{ Component string }

// Probe is anything observable.
type Probe interface{ Snapshot() Snapshot }

// Recorder accumulates counters for one component.
type Recorder struct{ component string }

// Snapshot implements Probe.
func (r *Recorder) Snapshot() Snapshot { return Snapshot{Component: r.component} }

// Enter raises the recorder's concurrency gauge (span open).
func (r *Recorder) Enter() {}

// Exit lowers the gauge (span close).
func (r *Recorder) Exit() {}

// Observe records one report-plane value (a seedflow sink).
func Observe(v float64) {}

// Registry is an ordered probe collection.
type Registry struct{ probes []Probe }

// Register adds probes.
func (g *Registry) Register(ps ...Probe) { g.probes = append(g.probes, ps...) }
