// Package sim is a miniature stand-in for the simulation kernel —
// just the Proc type, so the reqpath fixtures can declare offending
// signatures.
package sim

// Proc is a simulated process.
type Proc struct{ name string }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }
