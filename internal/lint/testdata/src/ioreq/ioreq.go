// Package ioreq is a miniature stand-in for the per-request context —
// enough surface (Request, Push, Pop) for the reqpath fixtures to
// type-check.
package ioreq

import "fixture/internal/sim"

// Request is a per-request context with a span stack.
type Request struct {
	p     *sim.Proc
	depth int
}

// Proc returns the executing process.
func (r *Request) Proc() *sim.Proc { return r.p }

// Push opens a span.
func (r *Request) Push(level int, comp string) { r.depth++ }

// Pop closes the current span.
func (r *Request) Pop() { r.depth-- }
