// Package spanbalance exercises the CFG-based span-balance analyzer:
// every Push/Enter must reach a Pop/Exit on every control-flow path,
// with defers credited only on paths that actually schedule them and
// single-statement helpers made transparent through facts.
package spanbalance

import (
	"errors"

	"fixture/internal/ioreq"
	"fixture/internal/telemetry"
)

var errFail = errors.New("fail")

// Layer is a fixture component with the helper idiom.
type Layer struct {
	name string
	rec  *telemetry.Recorder
}

// span is the push-only helper; the analyzer exports it as a span
// fact instead of flagging its unbalanced body.
func (l *Layer) span(r *ioreq.Request) {
	r.Push(3, l.name)
}

// GoodDefer is the idiomatic shape: helper open, deferred close.
func (l *Layer) GoodDefer(r *ioreq.Request, n int64) int64 {
	l.span(r)
	defer r.Pop()
	return n
}

// GoodManual closes explicitly on both paths.
func (l *Layer) GoodManual(r *ioreq.Request, fail bool) error {
	r.Push(3, l.name)
	if fail {
		r.Pop()
		return errFail
	}
	r.Pop()
	return nil
}

// GoodPanic panics after the defer is scheduled: defers run during
// the unwind, so the span still closes.
func (l *Layer) GoodPanic(r *ioreq.Request, bad bool) {
	l.span(r)
	defer r.Pop()
	if bad {
		panic("boom")
	}
}

// GoodDeferredLit closes through a deferred literal.
func (l *Layer) GoodDeferredLit(r *ioreq.Request) {
	r.Push(3, l.name)
	defer func() {
		l.rec.Exit()
		r.Pop()
	}()
	l.rec.Enter()
}

// BadEarlyReturn leaks the span on the error path.
func (l *Layer) BadEarlyReturn(r *ioreq.Request, fail bool) error {
	r.Push(3, l.name) // want spanbalance "not closed on every path"
	if fail {
		return errFail
	}
	r.Pop()
	return nil
}

// BadHelperNoPop is the old syntactic blind spot: the open hides in
// the helper and nothing ever closes it. The fact makes the call
// site accountable.
func (l *Layer) BadHelperNoPop(r *ioreq.Request) {
	l.span(r) // want spanbalance "not closed on every path"
}

// BadPanicFirst can panic before the defer is scheduled, so the
// unwind path leaks the span.
func (l *Layer) BadPanicFirst(r *ioreq.Request, bad bool) {
	r.Push(3, l.name) // want spanbalance "not closed on every path"
	if bad {
		panic("boom")
	}
	defer r.Pop()
}

// BadDoubleClose pops twice on the fail path.
func (l *Layer) BadDoubleClose(r *ioreq.Request, fail bool) {
	r.Push(3, l.name)
	if fail {
		r.Pop()
	}
	r.Pop() // want spanbalance "not open on every path reaching this point"
}

// BadLoop opens inside the loop body without closing in the same
// iteration: the depth grows with the trip count, and the paths that
// exit early leave spans open.
func (l *Layer) BadLoop(r *ioreq.Request, n int) {
	for i := 0; i < n; i++ {
		r.Push(3, l.name) // want spanbalance "inside a loop" want spanbalance "not closed on every path"
	}
}

// BadGauge raises the concurrency gauge and skips the Exit on the
// error path.
func (l *Layer) BadGauge(fail bool) error {
	l.rec.Enter() // want spanbalance "not closed on every path"
	if fail {
		return errFail
	}
	l.rec.Exit()
	return nil
}

// GoodLit opens and closes inside a non-deferred literal: the
// literal is its own scope and balances.
func (l *Layer) GoodLit(r *ioreq.Request) func() {
	return func() {
		r.Push(3, l.name)
		defer r.Pop()
	}
}

// BadLit leaks inside a returned closure: the literal's own CFG is
// checked.
func (l *Layer) BadLit(r *ioreq.Request) func() {
	return func() {
		r.Push(3, l.name) // want spanbalance "not closed on every path"
	}
}
