// Package spanbalancefix holds only span leaks whose suggested fix —
// inserting `defer <subject>.<Close>()` right after the open — fully
// resolves the finding. The fix test applies every fix and asserts
// the rewritten package is gofmt-clean and re-lints with zero
// findings.
package spanbalancefix

import (
	"errors"

	"fixture/internal/ioreq"
	"fixture/internal/telemetry"
)

var errFail = errors.New("fail")

// Layer is a fixture component.
type Layer struct {
	name string
	rec  *telemetry.Recorder
}

// span is the push-only helper, exported as a fact.
func (l *Layer) span(r *ioreq.Request) {
	r.Push(3, l.name)
}

// LeakDirect never closes the span it opens.
func (l *Layer) LeakDirect(r *ioreq.Request, n int64) int64 {
	r.Push(3, l.name) // want spanbalance "not closed on every path"
	return n
}

// LeakHelper opens through the helper and never closes, on either
// path.
func (l *Layer) LeakHelper(r *ioreq.Request, fail bool) error {
	l.span(r) // want spanbalance "not closed on every path"
	if fail {
		return errFail
	}
	return nil
}

// LeakGauge raises the concurrency gauge and forgets to lower it.
func (l *Layer) LeakGauge(n int) int {
	l.rec.Enter() // want spanbalance "not closed on every path"
	return n * 2
}
