// Package unitflowfix holds only unit mismatches with an exact
// integer conversion (larger unit flowing into a smaller slot), so
// every finding carries a multiply-by-factor fix. The fix test
// applies them all and asserts the rewritten package is gofmt-clean
// and re-lints with zero findings.
package unitflowfix

// spec has a byte-denominated field.
type spec struct {
	BlockBytes int64
}

// AssignKiB flows a KiB quantity into a Bytes slot.
func AssignKiB(quotaKiB int64) int64 {
	var totalBytes int64
	totalBytes = quotaKiB // want unitflow "mixes Bytes and KiB"
	return totalBytes
}

// DeclMiB initializes a Bytes variable from a MiB value.
func DeclMiB(winMiB int64) int64 {
	var sizeBytes = winMiB // want unitflow "mixes Bytes and MiB"
	return sizeBytes
}

// FieldKB fills a Bytes field from a decimal-KB value.
func FieldKB(limitKB int64) spec {
	return spec{BlockBytes: limitKB} // want unitflow "mixes Bytes and KB"
}

// FlowKiB launders the unit through a suffix-less local before it
// lands in a Bytes slot.
func FlowKiB(quotaKiB int64) int64 {
	q := quotaKiB
	var outBytes int64
	outBytes = q // want unitflow "mixes Bytes and KiB"
	return outBytes
}
