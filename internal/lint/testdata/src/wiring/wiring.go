// Package wiring registers the conforming device probe, giving
// probeconform its cross-package registration evidence.
package wiring

import (
	"fixture/internal/device"
	"fixture/internal/telemetry"
)

// Assemble registers the disk's probe with a registry.
func Assemble(d *device.Disk) *telemetry.Registry {
	g := &telemetry.Registry{}
	g.Register(d.Telemetry())
	return g
}
