// Package faultplan exercises the fault-plan hygiene analyzer:
// non-empty Plan literals must set Name and Seed, span faults must
// carry a Duration, and every constructed plan must reach
// fault.Apply, possibly through intermediate consumers tracked via
// facts.
package faultplan

import "fixture/internal/fault"

// Good builds a complete plan and arms it.
func Good(c *fault.Cluster) *fault.Injector {
	pl := fault.Plan{
		Name:   "disk-fail",
		Seed:   1,
		Events: []fault.Event{{At: 1, Kind: fault.DiskFail}},
	}
	return fault.Apply(c, pl)
}

// arm forwards its plan to Apply; the consumer fact makes callers of
// arm as armed as callers of Apply.
func arm(c *fault.Cluster, pl fault.Plan) *fault.Injector {
	return fault.Apply(c, pl)
}

// GoodForwarded arms through the intermediate consumer.
func GoodForwarded(c *fault.Cluster) *fault.Injector {
	return arm(c, fault.Plan{
		Name:   "flap",
		Seed:   7,
		Events: []fault.Event{{Kind: fault.NetFlap, Duration: 400}},
	})
}

// GoodEmpty is the healthy baseline: the zero plan is exempt.
func GoodEmpty(c *fault.Cluster) *fault.Injector {
	return fault.Apply(c, fault.Plan{})
}

// BadMissing sets neither Name nor Seed.
func BadMissing(c *fault.Cluster) *fault.Injector {
	pl := fault.Plan{ // want faultplan "does not set Name" want faultplan "does not set Seed"
		Events: []fault.Event{{Kind: fault.DiskFail}},
	}
	return fault.Apply(c, pl)
}

// BadDuration schedules a flap with no Duration: a zero-length
// outage.
func BadDuration(c *fault.Cluster) *fault.Injector {
	pl := fault.Plan{
		Name:   "flap",
		Seed:   3,
		Events: []fault.Event{{Kind: fault.NetFlap}}, // want faultplan "does not set Duration"
	}
	return fault.Apply(c, pl)
}

// describe reads the plan without consuming it, so its fact marks
// the parameter not-consumed.
func describe(pl fault.Plan) string { return pl.Name }

// BadUnarmed constructs a plan that is only ever described, never
// armed: its events can never fire.
func BadUnarmed() string {
	pl := fault.Plan{ // want faultplan "never armed"
		Name:   "lost",
		Seed:   4,
		Events: []fault.Event{{Kind: fault.NFSStall, Duration: 100}},
	}
	return describe(pl)
}
