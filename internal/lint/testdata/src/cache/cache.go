// Package cache exercises the reqpath analyzer: it is one of the
// below-library layer packages whose exported entry points must be
// request-threaded and whose spans must balance.
package cache

import (
	"fixture/internal/ioreq"
	"fixture/internal/sim"
)

// Cache is a fixture layer component.
type Cache struct{ name string }

// ReadAt is correctly request-threaded and balances its span.
func (c *Cache) ReadAt(r *ioreq.Request, off, n int64) int64 {
	r.Push(3, c.name)
	defer r.Pop()
	return n
}

// WriteAt still takes a bare proc: the request context (spans, op
// class, fault tags) is lost below this point.
func (c *Cache) WriteAt(p *sim.Proc, off, n int64) int64 { // want reqpath "takes a *sim.Proc"
	return n
}

// Flush opens a span but forgets to close it.
func (c *Cache) Flush(r *ioreq.Request) {
	r.Push(3, c.name) // want spanbalance "not closed on every path"
	c.Resize(0)
}

// span is the push-only helper idiom: a single-Push body exported to
// callers as a span fact, so they account the open at the call site
// and pair it with `defer r.Pop()`.
func (c *Cache) span(r *ioreq.Request) {
	r.Push(3, c.name)
}

// Drop closes inside a deferred literal — the path-sensitive check
// credits the deferred Pop on every exit the defer is scheduled on.
func (c *Cache) Drop(r *ioreq.Request) {
	r.Push(3, c.name)
	defer func() { r.Pop() }()
}

// evict is unexported: internal helpers may carry procs (the span
// contract binds the package boundary, not every private function).
func (c *Cache) evict(p *sim.Proc, n int64) int64 { return n }

// Resize takes no proc at all and is out of scope.
func (c *Cache) Resize(n int64) {}
