// Package seedflow exercises the wall-clock taint analyzer: values
// reaching the report plane (the telemetry package) must not derive
// from time.Now, however many assignments, intermediate functions,
// and package boundaries sit between source and sink.
package seedflow

import (
	"fixture/internal/seedsrc"
	"fixture/internal/telemetry"
)

// relay is a same-package intermediate; its fact says "result 0
// carries whatever parameter 0 carried".
func relay(v float64) float64 { return v }

// record forwards its parameter to a sink; its fact marks parameter
// 0 as sink-reaching.
func record(v float64) {
	telemetry.Observe(v)
}

// GoodTick records a deterministic value.
func GoodTick() {
	telemetry.Observe(relay(seedsrc.Tick()))
}

// BadDirect records the wall clock outright.
func BadDirect() {
	telemetry.Observe(seedsrc.Stamp()) // want seedflow "wall-clock-tainted"
}

// BadLaundered records a wall-clock value laundered through an
// intermediate function in another package — the cross-package fact
// chain (Stamp → passthrough → LaunderedStamp) keeps the taint.
func BadLaundered() {
	telemetry.Observe(relay(seedsrc.LaunderedStamp())) // want seedflow "wall-clock-tainted"
}

// BadAssigned launders through locals and arithmetic.
func BadAssigned() {
	t := seedsrc.Stamp()
	u := t/1e9 + 1
	telemetry.Observe(u) // want seedflow "wall-clock-tainted"
}

// BadViaSinkParam reaches the sink inside a callee: record's fact
// says its parameter lands in the report plane.
func BadViaSinkParam() {
	record(seedsrc.Stamp()) // want seedflow "wall-clock-tainted"
}
