// Package suppress exercises the //lint:ignore mechanism: a
// well-formed directive silences the finding on the next (or same)
// line, a directive naming another check does not, and a directive
// without a reason is itself reported.
package suppress

import "time"

// Stamp's wall-clock read is silenced by the directive above it.
func Stamp() int64 {
	//lint:ignore determinism fixture: the wall-clock read is the point of this test
	return time.Now().UnixNano()
}

// Inline is silenced by a same-line directive.
func Inline() int64 {
	return time.Now().UnixNano() //lint:ignore determinism fixture: inline form
}

// WrongCheck is NOT silenced: the directive names another check.
func WrongCheck() int64 {
	//lint:ignore errcheck this reason matches a different analyzer
	return time.Now().UnixNano() // unsuppressed-wrong-check
}

// Malformed carries a reason-less directive, which is a finding in
// its own right, and does not silence the line below it.
func Malformed() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano() // unsuppressed-malformed
}

// FarAway is NOT silenced: the directive is two lines up — and since
// it therefore suppresses nothing, the directive itself is reported
// as unused.
func FarAway() int64 {
	//lint:ignore determinism fixture: too far from the finding

	return time.Now().UnixNano() // unsuppressed-far-away
}

// MultiFinding has two findings of different checks on one line; the
// trailing directive silences only the named check (unitflow) and
// leaves the determinism finding standing.
func MultiFinding(sizeBytes, quotaKiB int64) int64 {
	return sizeBytes + quotaKiB + time.Now().UnixNano() //lint:ignore unitflow fixture: the unit mix is deliberate, the wall clock is the finding under test
}
