// Package unitflow exercises the flow-sensitive unit analyzer:
// arithmetic and assignments mixing size-unit name suffixes, with
// units tracked through suffix-less locals.
package unitflow

func toBytes(vKiB int64) int64 { return vKiB << 10 }

// Good stays within one unit or converts through a helper whose name
// states the result unit.
func Good(fileBytes, blockBytes, quotaKiB int64) int64 {
	total := fileBytes + blockBytes
	total += toBytes(quotaKiB)
	if blockBytes > fileBytes {
		return fileBytes
	}
	return total
}

// Bad mixes suffixes in comparisons and arithmetic.
func Bad(fileBytes, quotaKiB int64) int64 {
	if fileBytes > quotaKiB { // want unitflow "mixes"
		return fileBytes - quotaKiB // want unitflow "mixes"
	}
	return fileBytes
}

// BadAssign smuggles a value across units through an assignment.
func BadAssign(fileBytes int64) int64 {
	sizeMiB := fileBytes // want unitflow "mixes"
	return sizeMiB
}

// BadDecl does the same through a var declaration.
func BadDecl(fileBytes int64) int64 {
	var sizeKiB = fileBytes // want unitflow "mixes"
	return sizeKiB
}

// BadFlow launders the unit through a suffix-less local: q has no
// suffix, but the KiB it was initialized from flows with it.
func BadFlow(quotaKiB, limitBytes int64) bool {
	q := quotaKiB
	return q > limitBytes // want unitflow "mixes"
}

// GoodFlowCleared multiplies by an untyped constant, which clears the
// unit — the explicit-conversion escape hatch the autofix emits.
func GoodFlowCleared(quotaKiB int64) int64 {
	var totalBytes int64
	totalBytes = quotaKiB * 1024
	return totalBytes
}

// GoodReassigned loses its unit when overwritten from an unknown
// source, so later comparisons are not flagged.
func GoodReassigned(quotaKiB, limitBytes, raw int64) bool {
	q := quotaKiB
	q = raw
	return q > limitBytes
}

// spec has a byte-denominated field.
type spec struct {
	BlockBytes int64
}

// BadField fills a Bytes struct field from a KiB value.
func BadField(szKiB int64) spec {
	return spec{BlockBytes: szKiB} // want unitflow "mixes"
}

// Scaled multiplies by a unitless factor: allowed.
func Scaled(fileBytes int64, replicas int) int64 {
	return fileBytes * int64(replicas)
}
