// Package core is a stub of the methodology package for the legacyapi
// fixture: it reintroduces the removed pre-Session shapes (which must
// be flagged at their declarations) alongside the supported Session
// API (which must not be).
package core

// Session is the supported entry point; declaring it is fine.
type Session struct{ ch *Characterization }

// Characterization is a plain result type; its name is not banned.
type Characterization struct{ Rate float64 }

// NewSession is the supported constructor.
func NewSession() *Session { return &Session{} }

// Evaluate as a method on Session is the supported API — a receiver
// disqualifies it from the top-level ban.
func (s *Session) Evaluate(app string) (*Characterization, error) { return s.ch, nil }

type Methodology struct{ s *Session } // want legacyapi "type Methodology reintroduces the removed pre-Session core API"

func Characterize(quick bool) (*Characterization, error) { // want legacyapi "function Characterize reintroduces the removed pre-Session core API"
	return nil, nil
}

func Evaluate(app string, ch *Characterization) (*Characterization, error) { // want legacyapi "function Evaluate reintroduces the removed pre-Session core API"
	return ch, nil
}

var EvaluateScenario = Evaluate // want legacyapi "declaration EvaluateScenario reintroduces the removed pre-Session core API"

// evaluate is unexported: private helpers may keep the old names.
func evaluate(app string) error { return nil }
