// Package device exercises the probeconform analyzer: it is one of
// the layer-package names the check watches.
package device

import "fixture/internal/telemetry"

// Disk is instrumented and correctly wired: it has the accessor and
// the wiring package registers it.
type Disk struct{ rec *telemetry.Recorder }

// Telemetry exposes the disk's probe.
func (d *Disk) Telemetry() *telemetry.Recorder { return d.rec }

// Orphan holds counters but never exposes them.
type Orphan struct { // want probeconform "no Telemetry()"
	rec *telemetry.Recorder
}

// Mute retains its recorder privately.
func (o *Orphan) Mute() *telemetry.Recorder { return o.rec }

// Shelf exposes its probe, but nothing ever registers it.
type Shelf struct { // want probeconform "never passed to a Registry.Register"
	rec *telemetry.Recorder
}

// Telemetry exposes the shelf's probe.
func (s *Shelf) Telemetry() *telemetry.Recorder { return s.rec }

// Plain carries no telemetry and is out of the check's scope.
type Plain struct{ name string }

// Name returns the plain component's name.
func (p Plain) Name() string { return p.name }
