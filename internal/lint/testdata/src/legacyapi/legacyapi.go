// Package legacyapi is the consumer fixture for the legacyapi
// analyzer: qualified references to the removed pre-Session core API
// must be flagged; the Session replacement must stay clean.
package legacyapi

import "fixture/internal/core"

// old resurrects the removed package-level calls.
func old() error {
	ch, err := core.Characterize(true) // want legacyapi "core.Characterize was removed"
	if err != nil {
		return err
	}
	if _, err := core.Evaluate("btio", ch); err != nil { // want legacyapi "core.Evaluate was removed"
		return err
	}
	_, err = core.EvaluateScenario("btio", ch) // want legacyapi "core.EvaluateScenario was removed"
	return err
}

// oldFacade resurrects the removed facade type.
func oldFacade() any {
	var m core.Methodology // want legacyapi "core.Methodology was removed"
	return m
}

// current uses the Session API: the Evaluate here is a method call on
// a Session value, not a package-level reference, and must not be
// flagged.
func current() (*core.Characterization, error) {
	sess := core.NewSession()
	return sess.Evaluate("btio")
}
