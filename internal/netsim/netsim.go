// Package netsim models a cluster interconnect: switched full-duplex
// links with bandwidth, latency and contention. Each attached node
// gets a NIC with independent transmit and receive channels; the
// switch fabric is non-blocking (standard for the Gigabit Ethernet
// switches in the paper's clusters), so contention arises at NICs —
// exactly where it arises for NFS servers with many clients.
//
// Large transfers are segmented into quanta so concurrent flows share
// a NIC approximately fairly, like TCP streams on a real link.
package netsim

import (
	"fmt"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Params describes one network.
type Params struct {
	Name string
	// Bandwidth is the effective per-NIC data rate in bytes/second
	// (wire rate minus protocol overhead; ~117 MB/s for GigE TCP).
	Bandwidth float64
	// Latency is the one-way message latency (propagation + switch +
	// stack traversal).
	Latency sim.Duration
	// Quantum is the segmentation size for bandwidth sharing; zero
	// defaults to 1 MiB.
	Quantum int64
	// PerMessage is a fixed per-message software overhead (syscalls,
	// interrupt handling), charged once per Send.
	PerMessage sim.Duration
}

// GigabitEthernet returns parameters for the paper's Gigabit Ethernet
// data networks.
func GigabitEthernet(name string) Params {
	return Params{
		Name:       name,
		Bandwidth:  117e6,
		Latency:    100 * sim.Microsecond,
		Quantum:    1 << 20,
		PerMessage: 10 * sim.Microsecond,
	}
}

// Stats counts traffic through a network.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Network is a switched interconnect.
type Network struct {
	eng    *sim.Engine
	params Params
	nics   map[string]*NIC

	// Stats accumulates global traffic counters.
	Stats Stats

	rec *telemetry.Recorder
}

// NIC is one node's attachment: independent TX and RX channels.
type NIC struct {
	node string
	tx   *sim.Resource
	rx   *sim.Resource

	// Fault-injection state: slow is a serialization-time multiplier
	// (0 or 1 healthy, >1 a degraded link — autonegotiation fallback,
	// heavy retransmits); downUntil parks transfers touching this NIC
	// until the link comes back (a flap).
	slow      float64
	downUntil sim.Time

	// Stats accumulates per-NIC counters.
	Stats Stats

	rec *telemetry.Recorder
}

// New creates a network.
func New(e *sim.Engine, params Params) *Network {
	if params.Bandwidth <= 0 {
		panic(fmt.Sprintf("netsim %q: bandwidth must be positive", params.Name))
	}
	if params.Quantum == 0 {
		params.Quantum = 1 << 20
	}
	if params.Quantum < 0 {
		panic(fmt.Sprintf("netsim %q: negative quantum", params.Name))
	}
	return &Network{
		eng:    e,
		params: params,
		nics:   map[string]*NIC{},
		rec:    telemetry.NewRecorder(e, "net:"+params.Name, telemetry.LevelNetwork, 1),
	}
}

// Telemetry returns the network's aggregate telemetry probe.
func (n *Network) Telemetry() *telemetry.Recorder { return n.rec }

// Params returns the network parameters.
func (n *Network) Params() Params { return n.params }

// Attach adds a node to the network and returns its NIC. Attaching
// the same name twice panics: node names are the address space.
func (n *Network) Attach(node string) *NIC {
	if _, dup := n.nics[node]; dup {
		panic(fmt.Sprintf("netsim %q: node %q attached twice", n.params.Name, node))
	}
	nic := &NIC{
		node: node,
		tx:   sim.NewResource(n.eng, n.params.Name+":"+node+":tx", 1),
		rx:   sim.NewResource(n.eng, n.params.Name+":"+node+":rx", 1),
		// Two units: independent full-duplex TX and RX channels.
		rec: telemetry.NewRecorder(n.eng, "nic:"+n.params.Name+":"+node, telemetry.LevelNetwork, 2),
	}
	n.nics[node] = nic
	return nic
}

// NIC returns the NIC of an attached node, or panics if unknown.
func (n *Network) NIC(node string) *NIC {
	nic, ok := n.nics[node]
	if !ok {
		panic(fmt.Sprintf("netsim %q: unknown node %q", n.params.Name, node))
	}
	return nic
}

// Attached reports whether a node is attached to the network.
func (n *Network) Attached(node string) bool {
	_, ok := n.nics[node]
	return ok
}

// Degrade scales all subsequent serialization time through a node's
// NIC by factor (>1 slower; 1 restores full speed). Factors below 1
// panic: a fault cannot add bandwidth.
func (n *Network) Degrade(node string, factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("netsim %q: degrade factor %v below 1", n.params.Name, factor))
	}
	n.NIC(node).slow = factor
}

// FailLinkUntil takes a node's link down until the given absolute
// simulated time (a flap): transfers touching the NIC park until the
// link returns. Later of the current and new deadline wins, so
// overlapping flaps extend the outage.
func (n *Network) FailLinkUntil(node string, until sim.Time) {
	nic := n.NIC(node)
	if until > nic.downUntil {
		nic.downUntil = until
	}
	nic.rec.Add("link_flaps", 1)
}

// awaitLinks parks p until both endpoints' links are up. Re-checks
// after every wait: a new flap may land while waiting out the first.
func (n *Network) awaitLinks(p *sim.Proc, src, dst *NIC) {
	for {
		until := src.downUntil
		if dst.downUntil > until {
			until = dst.downUntil
		}
		if p.Now() >= until {
			return
		}
		d := sim.Duration(until - p.Now())
		for _, nic := range []*NIC{src, dst} {
			if nic.downUntil > p.Now() {
				nic.rec.Add("flap_waits", 1)
				nic.rec.Add("flap_wait_ns", int64(d))
			}
			if src == dst {
				break // loopback: count once
			}
		}
		p.Sleep(d)
	}
}

// slowFactor returns the serialization multiplier for a transfer
// between two NICs: the slower endpoint governs.
func slowFactor(src, dst *NIC) float64 {
	f := src.slow
	if dst.slow > f {
		f = dst.slow
	}
	if f < 1 {
		return 1
	}
	return f
}

// xferTime returns serialization time for nb bytes at link rate.
func (n *Network) xferTime(nb int64) sim.Duration {
	return sim.Duration(float64(nb) / n.params.Bandwidth * 1e9)
}

// Send transfers nb bytes from one node to another, blocking the
// request's process for the full transfer time. Loopback (from == to)
// costs only the per-message overhead plus a memory-speed copy
// approximation.
func (n *Network) Send(r *ioreq.Request, from, to string, nb int64) {
	if nb < 0 {
		panic(fmt.Sprintf("netsim %q: negative send size", n.params.Name))
	}
	r.Push(telemetry.LevelNetwork, "net:"+n.params.Name)
	defer r.Pop()
	p := r.Proc()
	src, dst := n.NIC(from), n.NIC(to)
	n.Stats.Messages++
	n.Stats.Bytes += nb
	src.Stats.Messages++
	src.Stats.Bytes += nb
	dst.Stats.Messages++
	dst.Stats.Bytes += nb

	// Telemetry convention: a message is a write on the sender's NIC
	// and a read on the receiver's; the network aggregate records it
	// once, as a write. Busy time is the full message span including
	// NIC contention — the receiver-observed transfer latency.
	start := p.Now()
	n.rec.Enter()
	src.rec.Enter()
	dst.rec.Enter()
	defer func() {
		el := sim.Duration(p.Now() - start)
		n.rec.Observe(telemetry.ClassWrite, 1, nb, el)
		src.rec.Observe(telemetry.ClassWrite, 1, nb, el)
		dst.rec.Observe(telemetry.ClassRead, 1, nb, el)
		dst.rec.Exit()
		src.rec.Exit()
		n.rec.Exit()
	}()
	if from == to {
		n.rec.Add("loopback_msgs", 1)
	}

	p.Sleep(n.params.PerMessage)
	if from == to {
		// Loopback: no wire, charge a fast memory copy.
		p.Sleep(sim.Duration(float64(nb) / (4 * n.params.Bandwidth) * 1e9))
		return
	}
	if src.downUntil > p.Now() || dst.downUntil > p.Now() {
		r.Tag("link_flap")
	}
	n.awaitLinks(p, src, dst)
	slow := slowFactor(src, dst)
	if slow > 1 {
		n.rec.Add("degraded_msgs", 1)
		r.Tag("degraded_link")
	}

	// First quantum carries the one-way latency; the rest pipeline.
	first := true
	remaining := nb
	for {
		q := remaining
		if q > n.params.Quantum {
			q = n.params.Quantum
		}
		src.tx.Acquire(p, 1)
		dst.rx.Acquire(p, 1)
		t := sim.Duration(float64(n.xferTime(q)) * slow)
		if first {
			t += n.params.Latency
			first = false
		}
		p.Sleep(t)
		dst.rx.Release(1)
		src.tx.Release(1)
		remaining -= q
		if remaining <= 0 {
			return
		}
	}
}

// RoundTrip models a small request/response exchange (an RPC shell):
// request of reqBytes one way, response of respBytes back.
func (n *Network) RoundTrip(r *ioreq.Request, from, to string, reqBytes, respBytes int64) {
	n.Send(r, from, to, reqBytes)
	n.Send(r, to, from, respBytes)
}

// Utilization returns the TX-side utilization of a node's NIC.
func (nic *NIC) Utilization() float64 { return nic.tx.Utilization() }

// Telemetry returns the NIC's telemetry probe.
func (nic *NIC) Telemetry() *telemetry.Recorder { return nic.rec }

// Node returns the NIC's node name.
func (nic *NIC) Node() string { return nic.node }
