package netsim

import (
	"fmt"
	"testing"
	"testing/quick"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

const mb = int64(1) << 20

func newNet(e *sim.Engine, nodes ...string) *Network {
	n := New(e, GigabitEthernet("test"))
	for _, node := range nodes {
		n.Attach(node)
	}
	return n
}

func elapsed(e *sim.Engine, fn func(*sim.Proc)) sim.Duration {
	var dur sim.Duration
	e.Spawn("t", func(p *sim.Proc) {
		t0 := p.Now()
		fn(p)
		dur = sim.Duration(p.Now() - t0)
	})
	e.Run()
	return dur
}

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	d := elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", 117*mb) })
	// 117 MB at 117 MB/s ≈ 1.05 s (plus small latency/overheads).
	if d < sim.Second || d > sim.Second+sim.Second/10 {
		t.Fatalf("117MB transfer took %v, want ~1.05s", d)
	}
}

func TestSmallMessageDominatedByLatency(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	d := elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", 64) })
	if d < 100*sim.Microsecond || d > 200*sim.Microsecond {
		t.Fatalf("64B message took %v, want latency-bound ~110µs", d)
	}
}

func TestManyToOneContention(t *testing.T) {
	// Four clients each send 29.25 MB to one server: the server's RX
	// channel serializes them, so total time ≈ 4 × one transfer.
	e := sim.NewEngine()
	n := newNet(e, "srv", "c0", "c1", "c2", "c3")
	done := sim.NewCompletion(e, 4)
	for i := 0; i < 4; i++ {
		node := fmt.Sprintf("c%d", i)
		e.Spawn(node, func(p *sim.Proc) {
			n.Send(ioreq.Meta(p), node, "srv", 29*mb)
			done.Done()
		})
	}
	end := e.Run()
	// 4 × 29 MB = 116 MB through one 117 MB/s NIC: very close to 1 s.
	if end < sim.Time(990*sim.Millisecond) || end > sim.Time(1100*sim.Millisecond) {
		t.Fatalf("4-client aggregate finished at %v, want ~1s (RX serialization)", sim.Duration(end))
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	// A→B and B→A at the same time must not contend (full duplex):
	// both finish in about the single-transfer time.
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	e.Spawn("fwd", func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", 117*mb) })
	e.Spawn("rev", func(p *sim.Proc) { n.Send(ioreq.Meta(p), "b", "a", 117*mb) })
	end := e.Run()
	if end > sim.Time(sim.Second+sim.Second/10) {
		t.Fatalf("duplex transfers took %v, want ~1.05s (no contention)", sim.Duration(end))
	}
}

func TestDisjointPairsParallel(t *testing.T) {
	// a→b and c→d do not share any NIC: fully parallel.
	e := sim.NewEngine()
	n := newNet(e, "a", "b", "c", "d")
	e.Spawn("1", func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", 117*mb) })
	e.Spawn("2", func(p *sim.Proc) { n.Send(ioreq.Meta(p), "c", "d", 117*mb) })
	end := e.Run()
	if end > sim.Time(sim.Second+sim.Second/10) {
		t.Fatalf("disjoint transfers took %v, want ~1.05s", sim.Duration(end))
	}
}

func TestFairSharingViaQuanta(t *testing.T) {
	// Two flows out of the same source NIC: each should get about half
	// the bandwidth, and both should finish around 2× the solo time,
	// rather than one finishing at 1× and the other at 2×.
	e := sim.NewEngine()
	n := newNet(e, "a", "b", "c")
	var end1, end2 sim.Time
	e.Spawn("1", func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", 58*mb); end1 = p.Now() })
	e.Spawn("2", func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "c", 58*mb); end2 = p.Now() })
	e.Run()
	diff := end1 - end2
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.1*float64(end1) {
		t.Fatalf("unfair sharing: flow ends %v vs %v", sim.Duration(end1), sim.Duration(end2))
	}
}

func TestLoopbackFast(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	dLoop := elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "a", 10*mb) })
	e2 := sim.NewEngine()
	n2 := newNet(e2, "a", "b")
	dWire := elapsed(e2, func(p *sim.Proc) { n2.Send(ioreq.Meta(p), "a", "b", 10*mb) })
	if dLoop >= dWire {
		t.Fatalf("loopback (%v) not faster than wire (%v)", dLoop, dWire)
	}
}

func TestRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "cl", "srv")
	d := elapsed(e, func(p *sim.Proc) { n.RoundTrip(ioreq.Meta(p), "cl", "srv", 128, 128) })
	// Two latency-bound messages.
	if d < 200*sim.Microsecond || d > 400*sim.Microsecond {
		t.Fatalf("round trip took %v, want ~220µs", d)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attach")
		}
	}()
	n.Attach("a")
}

func TestUnknownNodePanics(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a")
	e.Spawn("s", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on unknown destination")
			}
		}()
		n.Send(ioreq.Meta(p), "a", "ghost", 1)
	})
	e.Run()
}

func TestStats(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	elapsed(e, func(p *sim.Proc) {
		n.Send(ioreq.Meta(p), "a", "b", 3*mb)
		n.Send(ioreq.Meta(p), "b", "a", mb)
	})
	if n.Stats.Messages != 2 || n.Stats.Bytes != 4*mb {
		t.Fatalf("network stats = %+v", n.Stats)
	}
	if n.NIC("a").Stats.Bytes != 4*mb {
		t.Fatalf("nic stats = %+v", n.NIC("a").Stats)
	}
}

// Property: transfer time is monotone in size and never beats the
// bandwidth bound.
func TestQuickTransferMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a := int64(aRaw % (32 << 20))
		b := int64(bRaw % (32 << 20))
		if a > b {
			a, b = b, a
		}
		timeFor := func(nb int64) sim.Duration {
			e := sim.NewEngine()
			n := newNet(e, "x", "y")
			return elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "x", "y", nb) })
		}
		ta, tb := timeFor(a), timeFor(b)
		bound := sim.Duration(float64(a) / 117e6 * 1e9)
		return ta >= bound && tb >= ta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSend(b *testing.B) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	e.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Send(ioreq.Meta(p), "a", "b", 64<<10)
		}
	})
	b.ResetTimer()
	e.Run()
}
