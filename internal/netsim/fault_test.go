package netsim

import (
	"testing"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

func TestDegradeScalesTransferTime(t *testing.T) {
	base := func() sim.Duration {
		e := sim.NewEngine()
		n := newNet(e, "a", "b")
		return elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", 64*mb) })
	}()

	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	n.Degrade("b", 3)
	d := elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", 64*mb) })
	ratio := float64(d) / float64(base)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("degraded transfer ratio = %.2f (base %v, degraded %v), want ~3", ratio, base, d)
	}
	// The slower endpoint governs: degrading the other side too (by
	// less) must not change the factor.
	e2 := sim.NewEngine()
	n2 := newNet(e2, "a", "b")
	n2.Degrade("b", 3)
	n2.Degrade("a", 2)
	d2 := elapsed(e2, func(p *sim.Proc) { n2.Send(ioreq.Meta(p), "a", "b", 64*mb) })
	if d2 != d {
		t.Fatalf("max-of-endpoints broken: %v vs %v", d2, d)
	}
}

func TestDegradeCounts(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b", "c")
	n.Degrade("b", 2)
	elapsed(e, func(p *sim.Proc) {
		n.Send(ioreq.Meta(p), "a", "b", mb)
		n.Send(ioreq.Meta(p), "a", "c", mb)
	})
	if got := n.Telemetry().AuxVal("degraded_msgs"); got != 1 {
		t.Fatalf("degraded_msgs = %d, want 1 (only the a→b send)", got)
	}
}

func TestFailLinkUntilBlocksSenders(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	n.FailLinkUntil("b", sim.Time(2*sim.Second))
	d := elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", mb) })
	if d < 2*sim.Second {
		t.Fatalf("send through downed link finished in %v, want ≥ 2s", d)
	}
	if got := n.NIC("b").Telemetry().AuxVal("link_flaps"); got != 1 {
		t.Fatalf("link_flaps = %d", got)
	}
	if got := n.NIC("b").Telemetry().AuxVal("flap_waits"); got == 0 {
		t.Fatal("flap_waits not counted")
	}
}

func TestFailLinkLaterDeadlineWins(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a", "b")
	n.FailLinkUntil("b", sim.Time(3*sim.Second))
	n.FailLinkUntil("b", sim.Time(sim.Second)) // earlier: must not shorten
	d := elapsed(e, func(p *sim.Proc) { n.Send(ioreq.Meta(p), "a", "b", mb) })
	if d < 3*sim.Second {
		t.Fatalf("earlier deadline shortened outage: send done in %v", d)
	}
}

func TestDegradeValidation(t *testing.T) {
	e := sim.NewEngine()
	n := newNet(e, "a")
	if !n.Attached("a") || n.Attached("zz") {
		t.Fatal("Attached misreports")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Degrade(<1) did not panic")
		}
	}()
	n.Degrade("a", 0.5)
}
