// Package stats provides small numeric and formatting helpers shared
// by the methodology reports and command-line tools.
package stats

import (
	"fmt"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N              int
	Min, Max, Mean float64
}

// Summarize computes a Summary (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// MBs formats a byte rate as MB/s (decimal megabytes, as the paper's
// tables do).
func MBs(bytesPerSecond float64) string {
	return fmt.Sprintf("%.1f MB/s", bytesPerSecond/1e6)
}

// IBytes formats a byte count with binary units.
func IBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib && n%gib == 0:
		return fmt.Sprintf("%dGiB", n/gib)
	case n >= gib:
		return fmt.Sprintf("%.1fGiB", float64(n)/float64(gib))
	case n >= mib && n%mib == 0:
		return fmt.Sprintf("%dMiB", n/mib)
	case n >= mib:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(mib))
	case n >= kib:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(kib))
	}
	return fmt.Sprintf("%dB", n)
}

// Table renders rows of cells as an aligned text table. The first row
// is the header.
type Table struct {
	rows [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := map[int]int{}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", widths[i]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
