package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestQuickSummarizeBounds(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		// Bounded inputs: the property concerns ordering, not float
		// overflow behaviour at ±1e308.
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMBs(t *testing.T) {
	if got := MBs(117e6); got != "117.0 MB/s" {
		t.Fatalf("MBs = %q", got)
	}
}

func TestIBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512B",
		32 << 10:      "32.0KiB",
		1 << 20:       "1MiB",
		1<<20 + 1<<19: "1.5MiB",
		4 << 30:       "4GiB",
	}
	for in, want := range cases {
		if got := IBytes(in); got != want {
			t.Errorf("IBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.AddRow("a", "long-header")
	tb.AddRow("value-x", "b")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[2]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("missing header rule:\n%s", out)
	}
}

func TestEmptyTable(t *testing.T) {
	var tb Table
	if tb.String() != "" {
		t.Fatal("empty table should render empty")
	}
}
