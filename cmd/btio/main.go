// Command btio runs the NAS BT-IO benchmark on a simulated cluster
// and reports the paper's measurements: execution time, I/O time,
// throughput, and the traced application characterization.
//
// Usage:
//
//	btio [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	     [-class A|B|C] [-procs 16] [-subtype full|simple] [-timeline]
//	     [-metrics out.json] [-store DIR]
//
// With -store, the run is additionally evaluated against the cluster's
// characterization (looked up in — or computed into — the
// content-addressed store) and the used-percentage table is printed.
package main

import (
	"flag"
	"fmt"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/core"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
	"ioeval/internal/workload/btio"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization")
	className := flag.String("class", "C", "NPB class: A, B or C")
	procs := flag.Int("procs", 16, "MPI processes (square)")
	subtype := flag.String("subtype", "full", "I/O subtype: full or simple")
	timeline := flag.Bool("timeline", false, "render the Jumpshot-style trace timeline")
	metrics := cliutil.MetricsFlag(flag.CommandLine)
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	org, err := cliutil.ParseOrg(*orgName)
	if err != nil {
		cliutil.Fatal(err)
	}
	build, err := cliutil.ClusterBuilder(*platform, org, 0)
	if err != nil {
		cliutil.Fatal(err)
	}
	c := build()

	class := btio.ClassC
	switch *className {
	case "A":
		class = btio.ClassA
	case "B":
		class = btio.ClassB
	}
	sub := btio.Full
	if *subtype == "simple" {
		sub = btio.Simple
	}

	cfg := btio.Config{Class: class, Procs: *procs, Subtype: sub, ComputeScale: 1}
	app := btio.New(cfg)
	tr := trace.New()
	ps := trace.NewPhaseSnapshotter(c.Eng, c.Telemetry, tr, 0)
	fmt.Printf("running %s on %s ...\n\n", app.Name(), c.Cfg.Name)
	res, err := app.Run(c, ps)
	if err != nil {
		cliutil.Fatal(err)
	}

	var tb stats.Table
	tb.AddRow("metric", "value")
	tb.AddRow("execution time", res.ExecTime.String())
	tb.AddRow("I/O time", res.IOTime.String())
	tb.AddRow("write time", res.WriteTime.String())
	tb.AddRow("read time", res.ReadTime.String())
	tb.AddRow("throughput", stats.MBs(res.Throughput()))
	fmt.Println(tb.String())

	fmt.Println(core.FormatProfile(app.Name(), tr.Profile()))

	fmt.Println("Signature (rank 0 phases and weights):")
	for _, s := range tr.Signature(0) {
		fmt.Printf("  %-5s %-10s ops=%-6d bytes=%s weight=%d\n",
			s.Phase.Kind, s.Phase.Mode, s.Phase.Ops, stats.IBytes(s.Phase.Bytes), s.Weight)
	}

	if *timeline {
		fmt.Println()
		fmt.Println(trace.Timeline{Width: 110}.Render(tr.Events()))
	}

	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		sess := core.NewSession(build,
			core.WithStore(st),
			core.WithCharacterizeWorkers(*charWorkers),
			core.WithCharacterizeConfig(cliutil.CharConfig(true, false)))
		ev, err := sess.Evaluate(btio.New(cfg))
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Println(core.FormatEvaluation(ev))
		fmt.Println(cliutil.StoreSummary(st))
	}

	if *metrics != "" {
		rep := c.TelemetryReport()
		rep.App = app.Name()
		rep.Phases = ps.Finish()
		if err := cliutil.WriteMetrics(*metrics, rep, st); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Printf("(telemetry report written to %s)\n", *metrics)
	}
}
