// Command btio runs the NAS BT-IO benchmark on a simulated cluster
// and reports the paper's measurements: execution time, I/O time,
// throughput, and the traced application characterization.
//
// Usage:
//
//	btio [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	     [-class A|B|C] [-procs 16] [-subtype full|simple] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"

	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
	"ioeval/internal/workload/btio"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization")
	className := flag.String("class", "C", "NPB class: A, B or C")
	procs := flag.Int("procs", 16, "MPI processes (square)")
	subtype := flag.String("subtype", "full", "I/O subtype: full or simple")
	timeline := flag.Bool("timeline", false, "render the Jumpshot-style trace timeline")
	metrics := flag.String("metrics", "", "write the telemetry report (per-phase component snapshots) to this JSON file")
	flag.Parse()

	var c *cluster.Cluster
	if *platform == "clusterA" {
		c = cluster.ClusterA()
	} else {
		switch *orgName {
		case "jbod":
			c = cluster.Aohyper(cluster.JBOD)
		case "raid1":
			c = cluster.Aohyper(cluster.RAID1)
		case "raid5":
			c = cluster.Aohyper(cluster.RAID5)
		default:
			fatal(fmt.Errorf("unknown organization %q", *orgName))
		}
	}

	class := btio.ClassC
	switch *className {
	case "A":
		class = btio.ClassA
	case "B":
		class = btio.ClassB
	}
	st := btio.Full
	if *subtype == "simple" {
		st = btio.Simple
	}

	app := btio.New(btio.Config{Class: class, Procs: *procs, Subtype: st, ComputeScale: 1})
	tr := trace.New()
	ps := trace.NewPhaseSnapshotter(c.Eng, c.Telemetry, tr, 0)
	fmt.Printf("running %s on %s ...\n\n", app.Name(), c.Cfg.Name)
	res, err := app.Run(c, ps)
	if err != nil {
		fatal(err)
	}

	var tb stats.Table
	tb.AddRow("metric", "value")
	tb.AddRow("execution time", res.ExecTime.String())
	tb.AddRow("I/O time", res.IOTime.String())
	tb.AddRow("write time", res.WriteTime.String())
	tb.AddRow("read time", res.ReadTime.String())
	tb.AddRow("throughput", stats.MBs(res.Throughput()))
	fmt.Println(tb.String())

	fmt.Println(core.FormatProfile(app.Name(), tr.Profile()))

	fmt.Println("Signature (rank 0 phases and weights):")
	for _, s := range tr.Signature(0) {
		fmt.Printf("  %-5s %-10s ops=%-6d bytes=%s weight=%d\n",
			s.Phase.Kind, s.Phase.Mode, s.Phase.Ops, stats.IBytes(s.Phase.Bytes), s.Weight)
	}

	if *timeline {
		fmt.Println()
		fmt.Println(trace.Timeline{Width: 110}.Render(tr.Events()))
	}

	if *metrics != "" {
		rep := c.TelemetryReport()
		rep.App = app.Name()
		rep.Phases = ps.Finish()
		if err := rep.WriteFile(*metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("(telemetry report written to %s)\n", *metrics)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btio:", err)
	os.Exit(1)
}
