// Command ior runs the IOR-like MPI-IO library-level sweep against a
// simulated cluster's shared storage.
//
// Usage:
//
//	ior [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	    [-procs 8] [-file 32768] [-xfer 256] [-collective] [-store DIR]
//
// With -store, the cluster's characterized library-level table (from
// the content-addressed store, computed on a first miss) is printed
// alongside the fresh sweep, so one-off runs can be compared against
// the stored baseline.
package main

import (
	"flag"
	"fmt"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/bench"
	"ioeval/internal/core"
	"ioeval/internal/stats"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization")
	procs := flag.Int("procs", 8, "processes")
	fileMB := flag.Int64("file", 32768, "total file size in MiB (paper: 32 GiB)")
	xferKB := flag.Int64("xfer", 256, "transfer size in KiB")
	collective := flag.Bool("collective", false, "use collective (two-phase) I/O")
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	org, err := cliutil.ParseOrg(*orgName)
	if err != nil {
		cliutil.Fatal(err)
	}
	build, err := cliutil.ClusterBuilder(*platform, org, 0)
	if err != nil {
		cliutil.Fatal(err)
	}
	c := build()

	results, err := bench.RunIOR(c, bench.IORConfig{
		Procs:        *procs,
		FileSize:     *fileMB << 20,
		TransferSize: *xferKB << 10,
		Collective:   *collective,
	})
	if err != nil {
		cliutil.Fatal(err)
	}

	fmt.Printf("IOR-like sweep — %s, %d procs, %d MiB file, %d KiB transfers, collective=%v\n\n",
		c.Cfg.Name, *procs, *fileMB, *xferKB, *collective)
	var tb stats.Table
	tb.AddRow("block", "write", "read")
	for _, r := range results {
		tb.AddRow(stats.IBytes(r.BlockSize), stats.MBs(r.WriteRate), stats.MBs(r.ReadRate))
	}
	fmt.Println(tb.String())

	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		sess := core.NewSession(build,
			core.WithStore(st),
			core.WithCharacterizeWorkers(*charWorkers),
			core.WithCharacterizeConfig(cliutil.CharConfig(true, false)))
		ch, err := sess.Characterization()
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Println("Stored library-level baseline:")
		fmt.Println(core.FormatPerfTable(ch.Table(core.LevelIOLib)))
		fmt.Println(cliutil.StoreSummary(st))
	}
}
