// Command ior runs the IOR-like MPI-IO library-level sweep against a
// simulated cluster's shared storage.
//
// Usage:
//
//	ior [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	    [-procs 8] [-file 32768] [-xfer 256] [-collective]
package main

import (
	"flag"
	"fmt"
	"os"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/stats"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization")
	procs := flag.Int("procs", 8, "processes")
	fileMB := flag.Int64("file", 32768, "total file size in MiB (paper: 32 GiB)")
	xferKB := flag.Int64("xfer", 256, "transfer size in KiB")
	collective := flag.Bool("collective", false, "use collective (two-phase) I/O")
	flag.Parse()

	var c *cluster.Cluster
	if *platform == "clusterA" {
		c = cluster.ClusterA()
	} else {
		switch *orgName {
		case "jbod":
			c = cluster.Aohyper(cluster.JBOD)
		case "raid1":
			c = cluster.Aohyper(cluster.RAID1)
		case "raid5":
			c = cluster.Aohyper(cluster.RAID5)
		default:
			fmt.Fprintf(os.Stderr, "ior: unknown organization %q\n", *orgName)
			os.Exit(1)
		}
	}

	results, err := bench.RunIOR(c, bench.IORConfig{
		Procs:        *procs,
		FileSize:     *fileMB << 20,
		TransferSize: *xferKB << 10,
		Collective:   *collective,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ior:", err)
		os.Exit(1)
	}

	fmt.Printf("IOR-like sweep — %s, %d procs, %d MiB file, %d KiB transfers, collective=%v\n\n",
		c.Cfg.Name, *procs, *fileMB, *xferKB, *collective)
	var tb stats.Table
	tb.AddRow("block", "write", "read")
	for _, r := range results {
		tb.AddRow(stats.IBytes(r.BlockSize), stats.MBs(r.WriteRate), stats.MBs(r.ReadRate))
	}
	fmt.Println(tb.String())
}
