package cliutil

import (
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{",,", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{" a , b ,", []string{"a", "b"}},
		{"jbod, raid1,raid5", []string{"jbod", "raid1", "raid5"}},
	}
	for _, tc := range cases {
		if got := SplitList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseOrg(t *testing.T) {
	for name, want := range map[string]cluster.Organization{
		"jbod": cluster.JBOD, "raid1": cluster.RAID1, "raid5": cluster.RAID5,
	} {
		got, err := ParseOrg(name)
		if err != nil || got != want {
			t.Errorf("ParseOrg(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseOrg("raid6"); err == nil {
		t.Error("ParseOrg accepted an unknown organization")
	}
}

func TestPlatformConfig(t *testing.T) {
	for _, name := range []string{"aohyper", "clusterA"} {
		cfg, err := PlatformConfig(name)
		if err != nil {
			t.Fatalf("PlatformConfig(%q): %v", name, err)
		}
		if cfg.ComputeNodes <= 0 {
			t.Errorf("PlatformConfig(%q): no compute nodes", name)
		}
	}
	if _, err := PlatformConfig("beowulf"); err == nil {
		t.Error("PlatformConfig accepted an unknown platform")
	}
}

func TestClusterBuilder(t *testing.T) {
	build, err := ClusterBuilder("aohyper", cluster.RAID5, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := build()
	if c.Cfg.Org != cluster.RAID5 || c.Cfg.PFSIONodes != 0 {
		t.Errorf("aohyper cluster: org %v, pfs %d", c.Cfg.Org, c.Cfg.PFSIONodes)
	}
	if c2 := build(); c2 == c {
		t.Error("builder returned the same cluster twice (must be fresh per call)")
	}

	build, err = ClusterBuilder("clusterA", cluster.JBOD, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c := build(); c.Cfg.PFSIONodes != 2 {
		t.Errorf("pfsNodes not applied: %d", c.Cfg.PFSIONodes)
	}

	if _, err := ClusterBuilder("beowulf", cluster.JBOD, 0); err == nil {
		t.Error("ClusterBuilder accepted an unknown platform")
	}
}

func TestCharConfig(t *testing.T) {
	full := CharConfig(false, false)
	if !reflect.DeepEqual(full.FSBlockSizes, bench.DefaultBlockSizes()) {
		t.Error("full preset lost the paper block-size sweep")
	}
	if full.UsePFS {
		t.Error("UsePFS set without request")
	}

	quick := CharConfig(true, true)
	if !quick.UsePFS {
		t.Error("UsePFS not applied")
	}
	if len(quick.FSBlockSizes) >= len(full.FSBlockSizes) {
		t.Error("quick preset does not reduce the FS sweep")
	}
	if quick.LocalFileSize == 0 || quick.LocalFileSize >= 2<<30 {
		t.Errorf("quick LocalFileSize = %d, want small and explicit", quick.LocalFileSize)
	}
}

// TestFlagRegistration drives every shared flag helper through a real
// FlagSet: canonical names, defaults, and parsed values.
func TestFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	faultName := FaultFlag(fs)
	seed := SeedFlag(fs)
	spans := SpansFlag(fs)
	metrics := MetricsFlag(fs)
	storeDir := StoreFlag(fs)
	charWorkers := CharWorkersFlag(fs)

	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *faultName != "" || *seed != 0 || *spans || *metrics != "" || *storeDir != "" {
		t.Error("non-zero defaults on shared flags")
	}
	if *charWorkers != 0 {
		t.Errorf("-char-workers default = %d, want 0 (all CPUs)", *charWorkers)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	faultName = FaultFlag(fs)
	seed = SeedFlag(fs)
	spans = SpansFlag(fs)
	metrics = MetricsFlag(fs)
	storeDir = StoreFlag(fs)
	charWorkers = CharWorkersFlag(fs)
	err := fs.Parse([]string{
		"-fault", "disk-fail", "-seed", "42", "-spans",
		"-metrics", "m.json", "-store", "/tmp/cs", "-char-workers", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if *faultName != "disk-fail" || *seed != 42 || !*spans ||
		*metrics != "m.json" || *storeDir != "/tmp/cs" || *charWorkers != 4 {
		t.Errorf("parsed values: fault=%q seed=%d spans=%v metrics=%q store=%q char-workers=%d",
			*faultName, *seed, *spans, *metrics, *storeDir, *charWorkers)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	list := FaultListFlag(fs)
	if err := fs.Parse([]string{"-fault", "none,disk-fail"}); err != nil {
		t.Fatal(err)
	}
	if got := SplitList(*list); !reflect.DeepEqual(got, []string{"none", "disk-fail"}) {
		t.Errorf("fault list = %v", got)
	}
}

func TestFaultPlan(t *testing.T) {
	if plan, err := FaultPlan("", 99); plan != nil || err != nil {
		t.Errorf("empty name: plan=%v err=%v, want nil,nil", plan, err)
	}
	if _, err := FaultPlan("no-such-fault", 0); err == nil {
		t.Error("unknown scenario accepted")
	}
	plan, err := FaultPlan("disk-fail", 0)
	if err != nil || plan == nil {
		t.Fatalf("builtin: plan=%v err=%v", plan, err)
	}
	kept := plan.Seed
	override, err := FaultPlan("disk-fail", 1234)
	if err != nil {
		t.Fatal(err)
	}
	if override.Seed != 1234 {
		t.Errorf("seed override not applied: %d", override.Seed)
	}
	if plan.Seed != kept {
		t.Error("seed override mutated the earlier plan")
	}
}

func TestOpenStore(t *testing.T) {
	st, err := OpenStore("")
	if st != nil || err != nil {
		t.Errorf("OpenStore(\"\") = %v, %v, want nil,nil", st, err)
	}
	st, err = OpenStore(t.TempDir())
	if err != nil || st == nil {
		t.Fatalf("OpenStore(tempdir): %v, %v", st, err)
	}
	if !strings.Contains(StoreSummary(st), "store ") {
		t.Error("StoreSummary missing prefix")
	}
}

func TestWriteFileFn(t *testing.T) {
	path := t.TempDir() + "/out.txt"
	if err := WriteFileFn(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileFn(path, func(io.Writer) error { return io.ErrClosedPipe }); err != io.ErrClosedPipe {
		t.Errorf("write error not surfaced: %v", err)
	}
}
