// Package cliutil is the shared wiring of the ioeval commands: one
// implementation of the common flags (-fault, -seed, -spans,
// -metrics, -store), the platform/organization parsers, the quick
// characterization preset, JSON-export helpers and the exit-code
// conventions, so the ten main.go files cannot drift apart.
//
// Exit codes: 1 for runtime failures (Fatal), 2 for usage errors
// (FatalUsage) — matching the flag package's own behavior on bad
// flags.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fault"
	"ioeval/internal/store"
	"ioeval/internal/telemetry"
)

// Fatal prints the error prefixed with the command's name and exits
// with status 1 (runtime failure).
func Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), err)
	os.Exit(1)
}

// FatalUsage prints the flag usage and exits with status 2 (usage
// error).
func FatalUsage() {
	flag.Usage()
	os.Exit(2)
}

// SplitList splits a comma-separated flag value, trimming whitespace
// and dropping empty fields.
func SplitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// ParseOrg parses a device-organization name.
func ParseOrg(s string) (cluster.Organization, error) {
	switch s {
	case "jbod":
		return cluster.JBOD, nil
	case "raid1":
		return cluster.RAID1, nil
	case "raid5":
		return cluster.RAID5, nil
	}
	return 0, fmt.Errorf("unknown organization %q", s)
}

// PlatformConfig returns the named base platform's configuration.
func PlatformConfig(name string) (cluster.Config, error) {
	switch name {
	case "aohyper":
		return cluster.Aohyper(cluster.JBOD).Cfg, nil
	case "clusterA":
		return cluster.ClusterA().Cfg, nil
	}
	return cluster.Config{}, fmt.Errorf("unknown platform %q", name)
}

// ClusterBuilder returns a fresh-cluster builder for the named
// platform: org applies to Aohyper (clusterA has a fixed
// organization), pfsNodes > 0 additionally deploys the parallel FS.
func ClusterBuilder(platform string, org cluster.Organization, pfsNodes int) (func() *cluster.Cluster, error) {
	var cfg cluster.Config
	switch platform {
	case "clusterA":
		cfg = cluster.ClusterA().Cfg
	case "aohyper":
		cfg = cluster.Aohyper(org).Cfg
	default:
		return nil, fmt.Errorf("unknown platform %q", platform)
	}
	cfg.PFSIONodes = pfsNodes
	return func() *cluster.Cluster { return cluster.New(cfg) }, nil
}

// CharConfig returns the characterization parameters the evaluation
// commands share: the paper's defaults, or the reduced quick preset
// (small files, two modes, fewer library points) for fast demos.
func CharConfig(quick, usePFS bool) core.CharacterizeConfig {
	cfg := core.DefaultCharacterizeConfig()
	cfg.UsePFS = usePFS
	if quick {
		cfg.FSBlockSizes = []int64{64 << 10, 1 << 20, 4 << 20}
		cfg.FSModes = []bench.Mode{bench.SeqWrite, bench.SeqRead}
		cfg.LocalFileSize = 512 << 20
		cfg.GlobalFileSize = 512 << 20
		cfg.LibBlockSizes = []int64{4 << 20, 32 << 20}
		cfg.LibFileSize = 256 << 20
		cfg.LibProcs = 4
	}
	return cfg
}

// Flag registration: each helper registers one shared flag with the
// canonical name and help text.

// FaultFlag registers -fault (a single builtin scenario name).
func FaultFlag(fs *flag.FlagSet) *string {
	return fs.String("fault", "", "also evaluate under a fault scenario: "+strings.Join(fault.BuiltinNames(), ", "))
}

// FaultListFlag registers -fault as a comma-separated scenario axis
// ("none" stands for the healthy run).
func FaultListFlag(fs *flag.FlagSet) *string {
	return fs.String("fault", "", "comma-separated fault scenarios to sweep (none = healthy run): none, "+strings.Join(fault.BuiltinNames(), ", "))
}

// SeedFlag registers -seed (fault-plan seed override).
func SeedFlag(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 0, "override the fault plan's seed (0 keeps the plan's own)")
}

// SpansFlag registers -spans.
func SpansFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("spans", false, "print the span-based path report (per-level time attribution cross-checked against the used-% verdict)")
}

// MetricsFlag registers -metrics.
func MetricsFlag(fs *flag.FlagSet) *string {
	return fs.String("metrics", "", "write the telemetry report (per-level rates, per-phase component snapshots) to this JSON file")
}

// StoreFlag registers -store.
func StoreFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "", "characterization store directory: look up tables by content fingerprint before characterizing, write them back on a miss")
}

// CharWorkersFlag registers -char-workers. The default parallelizes
// across all CPUs: characterization results are byte-identical at any
// worker count, so there is no reason for a CLI to idle.
func CharWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("char-workers", 0, "concurrent characterization measurement units (0 = all CPUs, 1 = sequential); results are byte-identical at any count")
}

// FaultPlan resolves a builtin scenario name, applying the -seed
// override when non-zero. An empty name returns (nil, nil).
func FaultPlan(name string, seed int64) (*fault.Plan, error) {
	if name == "" {
		return nil, nil
	}
	plan, err := fault.Builtin(name)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		plan.Seed = seed
	}
	return &plan, nil
}

// OpenStore opens the characterization store at dir; an empty dir
// returns (nil, nil) — no store.
func OpenStore(dir string) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	return store.Open(dir)
}

// StoreSummary renders the store's counters as the one-line epilogue
// the commands print after a run.
func StoreSummary(st *store.Store) string {
	s := st.Stats()
	return fmt.Sprintf("store %s: %d hits (%d in-process), %d misses, %d writes, %d evictions, %d quarantined",
		st.Dir(), s.Hits, s.MemHits, s.Misses, s.Puts, s.Evictions, s.Quarantined)
}

// AddStoreSnapshot appends the store's telemetry probe to the
// report's component snapshots, so store behavior (hits, misses,
// evictions) is visible in the exported TelemetryReport.
func AddStoreSnapshot(rep *telemetry.Report, st *store.Store) {
	if rep == nil || st == nil {
		return
	}
	rep.Components = append(rep.Components, st.Snapshot())
}

// WriteMetrics writes the telemetry report to path, folding in the
// store's snapshot when a store is in use.
func WriteMetrics(path string, rep *telemetry.Report, st *store.Store) error {
	AddStoreSnapshot(rep, st)
	return rep.WriteFile(path)
}

// WriteFileFn creates path and streams fn into it, closing cleanly
// (the write error takes precedence over the close error).
func WriteFileFn(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}
