// Command iosynth runs declarative synthetic workloads — phase-graph
// specs compiled by internal/workload/synth — through the paper's
// full methodology: characterize the cluster, evaluate the spec under
// the tracer, and report the used-percentage tables, optionally side
// by side with a fault scenario.
//
// Run a spec:
//
//	iosynth -spec workload.json [-platform aohyper|clusterA]
//	        [-org jbod|raid1|raid5] [-pfs N] [-quick]
//	        [-fault scenario] [-seed N] [-spans] [-metrics out.json]
//	        [-store DIR] [-utilization]
//
// Emit a built-in generator's spec (the hand-coded apps re-expressed
// in the DSL) for editing and re-running:
//
//	iosynth -emit btio-full|btio-simple|madbench-shared|madbench-unique
//	        [-procs N] [-quick] [-out workload.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/core"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
	"ioeval/internal/workload/synth"
)

func main() {
	specPath := flag.String("spec", "", "synthetic-workload spec (JSON) to evaluate")
	emit := flag.String("emit", "", "write a generator's spec instead of running: btio-full, btio-simple, madbench-shared or madbench-unique")
	out := flag.String("out", "", "output file for -emit (default stdout)")
	platform := flag.String("platform", "aohyper", "cluster to simulate: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization: jbod, raid1 or raid5")
	procs := flag.Int("procs", 16, "MPI processes for -emit generators")
	pfsNodes := flag.Int("pfs", 0, "deploy a PVFS-like parallel FS over N I/O nodes and run against it")
	quick := flag.Bool("quick", false, "reduced characterization and generator problem sizes")
	utilization := flag.Bool("utilization", false, "print the cluster utilization report after evaluation")
	faultName := cliutil.FaultFlag(flag.CommandLine)
	seed := cliutil.SeedFlag(flag.CommandLine)
	spans := cliutil.SpansFlag(flag.CommandLine)
	metrics := cliutil.MetricsFlag(flag.CommandLine)
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	if *emit != "" {
		if err := emitSpec(*emit, *procs, *quick, *out); err != nil {
			cliutil.Fatal(err)
		}
		return
	}
	if *specPath == "" {
		cliutil.FatalUsage()
	}

	spec, err := synth.LoadSpec(*specPath)
	if err != nil {
		cliutil.Fatal(err)
	}
	app, err := synth.Compile(spec)
	if err != nil {
		cliutil.Fatal(err)
	}

	org, err := cliutil.ParseOrg(*orgName)
	if err != nil {
		cliutil.Fatal(err)
	}
	build, err := cliutil.ClusterBuilder(*platform, org, *pfsNodes)
	if err != nil {
		cliutil.Fatal(err)
	}

	fmt.Println("== Phase 1: characterization (system side) ==")
	opts := []core.SessionOption{
		core.WithCharacterizeConfig(cliutil.CharConfig(*quick, *pfsNodes > 0)),
		core.WithCharacterizeWorkers(*charWorkers),
	}
	plan, err := cliutil.FaultPlan(*faultName, *seed)
	if err != nil {
		cliutil.Fatal(err)
	}
	if plan != nil {
		opts = append(opts, core.WithFaultPlan(*plan))
	}
	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		opts = append(opts, core.WithStore(st))
	}
	sess := core.NewSession(build, opts...)
	ch, err := sess.Characterization()
	if err != nil {
		cliutil.Fatal(err)
	}
	for _, level := range core.Levels() {
		fmt.Println(core.FormatPerfTable(ch.Table(level)))
	}

	declR, declW := spec.DeclaredBytes()
	fmt.Printf("== Phase 3: evaluating spec %s (%d ranks, %d phases, %s read / %s written declared) ==\n\n",
		app.Name(), spec.Procs, len(spec.Phases), stats.IBytes(declR), stats.IBytes(declW))
	rep, err := sess.Run(app)
	if err != nil {
		cliutil.Fatal(err)
	}
	ev := rep.Evaluation
	fmt.Println(core.FormatProfile(ev.AppName(), ev.Profile()))
	fmt.Println(core.FormatEvaluation(ev))
	if *spans {
		fmt.Println(core.FormatPathReport(ev.PathReport()))
	}
	if rep.Degraded != nil {
		fmt.Printf("== Phase 3 (degraded): evaluation under fault scenario %q ==\n", rep.Scenario)
		fmt.Println(core.FormatEvaluation(rep.Degraded))
		if *spans {
			fmt.Println(core.FormatPathReport(rep.Degraded.PathReport()))
		}
		fmt.Println("Healthy vs degraded:")
		fmt.Println(core.FormatUsedComparison(ev.Used(), rep.Degraded.Used()))
	}
	if *utilization {
		fmt.Println(rep.Utilization)
		if rep.Degraded != nil {
			fmt.Println("Utilization under fault scenario:")
			fmt.Println(rep.DegradedUtilization)
		}
	}
	if *metrics != "" {
		if err := cliutil.WriteMetrics(*metrics, ev.TelemetryReport(), st); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Printf("(telemetry report written to %s)\n", *metrics)
	}
	if st != nil {
		fmt.Println(cliutil.StoreSummary(st))
	}
}

// emitSpec writes one of the built-in generators' specs.
func emitSpec(name string, procs int, quick bool, out string) error {
	var spec *synth.Spec
	switch name {
	case "btio-full", "btio-simple":
		class := btio.ClassC
		if quick {
			class = btio.ClassA
		}
		st := btio.Full
		if name == "btio-simple" {
			st = btio.Simple
		}
		spec = synth.BTIOSpec(btio.Config{Class: class, Procs: procs, Subtype: st, ComputeScale: 1})
	case "madbench-shared", "madbench-unique":
		ft := madbench.Shared
		if name == "madbench-unique" {
			ft = madbench.Unique
		}
		kpix := 18
		if quick {
			kpix = 4
		}
		spec = synth.MadbenchSpec(madbench.Config{Procs: procs, KPix: kpix, FileType: ft, BusyWork: sim.Second})
	default:
		return fmt.Errorf("unknown generator %q (want btio-full, btio-simple, madbench-shared or madbench-unique)", name)
	}
	if out == "" {
		return spec.WriteJSON(os.Stdout)
	}
	if err := cliutil.WriteFileFn(out, spec.WriteJSON); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s spec to %s\n", name, out)
	return nil
}
