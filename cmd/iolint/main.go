// Command iolint runs the repo-native static-analysis suite
// (internal/lint) over the module: determinism, lock discipline,
// unchecked errors, flow-sensitive unit safety, telemetry-probe
// conformance, request-path signatures, path-sensitive span balance,
// wall-clock taint tracking and fault-plan hygiene — the invariants
// behind the methodology's byte-identical reports.
//
// Usage:
//
//	go run ./cmd/iolint ./...          # whole module
//	go run ./cmd/iolint internal/core  # specific package directories
//	go run ./cmd/iolint -list          # describe the analyzers
//	go run ./cmd/iolint -json ./...    # findings as a JSON array
//	go run ./cmd/iolint -fix ./...     # apply suggested fixes in place
//	go run ./cmd/iolint -facts ./...   # dump the cross-package fact store
//
// Exit codes are a contract CI relies on: 0 on a clean tree, 1 when
// findings are reported, 2 on usage errors or when any package fails
// to parse or type-check (load errors win over findings — a partial
// analysis must never masquerade as a mostly-clean one). With -fix,
// fixable findings are applied and only remaining findings count.
// Findings can be suppressed at the site with
// `//lint:ignore <check> <reason>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ioeval/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against args, writing findings to out and
// errors to errw, and returns the process exit code.
func run(args []string, out, errw io.Writer) int {
	flags := flag.NewFlagSet("iolint", flag.ContinueOnError)
	flags.SetOutput(errw)
	list := flags.Bool("list", false, "list the analyzers and the invariants they enforce")
	asJSON := flags.Bool("json", false, "emit findings as a JSON array (file/line/col/check/message/fixable)")
	fix := flags.Bool("fix", false, "apply suggested fixes in place, then report what remains")
	facts := flags.Bool("facts", false, "dump the cross-package fact store instead of findings")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, az := range analyzers {
			report(out, "%s\n\t%s\n", az.Name, az.Doc)
		}
		return 0
	}

	modDir, err := findModuleRoot()
	if err != nil {
		report(errw, "iolint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		report(errw, "iolint: %v\n", err)
		return 2
	}
	pkgs, loadErrs := loadPatterns(loader, flags.Args())
	for _, e := range loadErrs {
		report(errw, "iolint: %v\n", e)
	}
	if len(pkgs) == 0 && len(loadErrs) > 0 {
		return 2
	}

	runner := &lint.Runner{Analyzers: analyzers}
	diags := runner.Run(pkgs)
	if *facts {
		report(out, "%s", runner.Facts.Dump())
		if len(loadErrs) > 0 {
			return 2
		}
		return 0
	}
	if *fix {
		var err error
		diags, err = applyFixes(modDir, pkgs, runner, diags, out)
		if err != nil {
			report(errw, "iolint: %v\n", err)
			return 2
		}
	}
	if *asJSON {
		emitJSON(out, diags, modDir)
	} else {
		for _, d := range diags {
			report(out, "%s\n", relativize(d, modDir))
		}
		if len(diags) > 0 {
			report(out, "iolint: %d finding(s)\n", len(diags))
		}
	}
	// Load errors dominate findings: exit 2 says "the analysis did not
	// cover the tree", which is worse news than any finding.
	if len(loadErrs) > 0 {
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// applyFixes writes every suggested fix to disk and re-runs the
// analysis on the fixed tree so the caller reports (and exits on)
// only what remains. The loader caches packages in memory, so the
// re-run needs a fresh loader over the fixed files.
func applyFixes(modDir string, pkgs []*lint.Package, runner *lint.Runner, diags []lint.Diagnostic, out io.Writer) ([]lint.Diagnostic, error) {
	if len(pkgs) == 0 {
		return diags, nil
	}
	res, err := lint.ApplyFixes(pkgs[0].Fset, diags, nil)
	if err != nil {
		return nil, err
	}
	if res.Applied == 0 {
		return diags, nil
	}
	files := make([]string, 0, len(res.Files))
	for name := range res.Files {
		files = append(files, name)
	}
	for _, name := range files {
		if err := os.WriteFile(name, res.Files[name], 0o644); err != nil {
			return nil, err
		}
	}
	report(out, "iolint: applied %d fix(es) across %d file(s)\n", res.Applied, len(res.Files))
	// Re-analyze the fixed tree: fixed findings disappear, and a fix
	// that somehow introduced a finding is caught here, keeping -fix
	// honest about idempotency.
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		return nil, err
	}
	reRun := &lint.Runner{Analyzers: runner.Analyzers}
	var rePkgs []*lint.Package
	var loadErrs []error
	for _, p := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, p.ModPath), "/")
		if rel == "" {
			rel = "."
		}
		np, err := loader.Load(rel)
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		rePkgs = append(rePkgs, np)
	}
	if len(loadErrs) > 0 {
		return nil, loadErrs[0]
	}
	return reRun.Run(rePkgs), nil
}

// jsonFinding is the machine-readable shape of one finding; CI turns
// these into GitHub Actions annotations.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

// emitJSON writes the findings as one JSON array (always an array,
// never null, so `jq '.[]'` works on a clean tree).
func emitJSON(out io.Writer, diags []lint.Diagnostic, modDir string) {
	arr := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		arr = append(arr, jsonFinding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Check: d.Check, Message: d.Message, Fixable: len(d.Fixes) > 0,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	_ = enc.Encode(arr)
}

// report writes user-facing output, explicitly discarding the
// writer error: the process exit code is the tool's contract, and a
// broken stdout pipe must not mask it.
func report(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// loadPatterns resolves the command-line package patterns: no
// arguments or "./..." loads the whole module; anything else is a
// package directory relative to the module root. Load failures are
// collected, not fatal, so the rest of the tree is still analyzed.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, []error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	var errs []error
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			all, loadErrs := loader.LoadAll()
			pkgs = append(pkgs, all...)
			errs = append(errs, loadErrs...)
			continue
		}
		p, err := loader.Load(filepath.Clean(strings.TrimPrefix(pat, "./")))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		pkgs = append(pkgs, p)
	}
	return dedupe(pkgs), errs
}

// dedupe drops packages already seen (patterns may overlap).
func dedupe(pkgs []*lint.Package) []*lint.Package {
	seen := map[string]bool{}
	var out []*lint.Package
	for _, p := range pkgs {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	return out
}

// relativize renders a diagnostic with its file path relative to the
// module root, for stable, clickable output.
func relativize(d lint.Diagnostic, modDir string) string {
	if rel, err := filepath.Rel(modDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
