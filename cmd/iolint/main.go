// Command iolint runs the repo-native static-analysis suite
// (internal/lint) over the module: determinism, lock discipline,
// unchecked errors, unit-suffix safety and telemetry-probe
// conformance — the invariants behind the methodology's byte-identical
// reports.
//
// Usage:
//
//	go run ./cmd/iolint ./...          # whole module
//	go run ./cmd/iolint internal/core  # specific package directories
//	go run ./cmd/iolint -list          # describe the analyzers
//
// iolint exits 0 on a clean tree, 1 when findings are reported, and
// 2 on usage or load errors. Findings can be suppressed at the site
// with `//lint:ignore <check> <reason>`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ioeval/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against args, writing findings to out and
// errors to errw, and returns the process exit code.
func run(args []string, out, errw io.Writer) int {
	flags := flag.NewFlagSet("iolint", flag.ContinueOnError)
	flags.SetOutput(errw)
	list := flags.Bool("list", false, "list the analyzers and the invariants they enforce")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, az := range analyzers {
			report(out, "%s\n\t%s\n", az.Name, az.Doc)
		}
		return 0
	}

	modDir, err := findModuleRoot()
	if err != nil {
		report(errw, "iolint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		report(errw, "iolint: %v\n", err)
		return 2
	}
	pkgs, err := loadPatterns(loader, flags.Args())
	if err != nil {
		report(errw, "iolint: %v\n", err)
		return 2
	}

	runner := &lint.Runner{Analyzers: analyzers}
	diags := runner.Run(pkgs)
	for _, d := range diags {
		report(out, "%s\n", relativize(d, modDir))
	}
	if len(diags) > 0 {
		report(out, "iolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// report writes user-facing output, explicitly discarding the
// writer error: the process exit code is the tool's contract, and a
// broken stdout pipe must not mask it.
func report(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// loadPatterns resolves the command-line package patterns: no
// arguments or "./..." loads the whole module; anything else is a
// package directory relative to the module root.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, all...)
			continue
		}
		p, err := loader.Load(filepath.Clean(strings.TrimPrefix(pat, "./")))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return dedupe(pkgs), nil
}

// dedupe drops packages already seen (patterns may overlap).
func dedupe(pkgs []*lint.Package) []*lint.Package {
	seen := map[string]bool{}
	var out []*lint.Package
	for _, p := range pkgs {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	return out
}

// relativize renders a diagnostic with its file path relative to the
// module root, for stable, clickable output.
func relativize(d lint.Diagnostic, modDir string) string {
	if rel, err := filepath.Rel(modDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
