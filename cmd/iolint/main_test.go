package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestListExitsZero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, name := range []string{"determinism", "lockdiscipline", "errcheck", "unitsafety", "probeconform"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks analyzer %q", name)
		}
	}
}

// TestFixtureFindingsExitOne runs the CLI against a fixture package:
// it must exit 1 and print position-accurate file:line:col findings.
func TestFixtureFindingsExitOne(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"internal/lint/testdata/src/determinism"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s, stdout: %s)", code, errw.String(), out.String())
	}
	posRe := regexp.MustCompile(`determinism\.go:\d+:\d+: determinism: call to time\.Now`)
	if !posRe.MatchString(out.String()) {
		t.Errorf("output lacks a position-accurate time.Now finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("output lacks the findings summary:\n%s", out.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"internal/stats"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package should print nothing, got:\n%s", out.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"no/such/package"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "iolint:") {
		t.Errorf("load errors must be reported on stderr, got: %s", errw.String())
	}
}
