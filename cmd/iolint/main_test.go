package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestListExitsZero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, name := range []string{
		"determinism", "lockdiscipline", "errcheck", "unitflow",
		"probeconform", "reqpath", "spanbalance", "seedflow", "faultplan",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks analyzer %q", name)
		}
	}
	if strings.Contains(out.String(), "unitsafety") {
		t.Error("-list still mentions the retired unitsafety analyzer")
	}
}

// TestFixtureFindingsExitOne runs the CLI against a fixture package:
// it must exit 1 and print position-accurate file:line:col findings.
func TestFixtureFindingsExitOne(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"internal/lint/testdata/src/determinism"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s, stdout: %s)", code, errw.String(), out.String())
	}
	posRe := regexp.MustCompile(`determinism\.go:\d+:\d+: determinism: call to time\.Now`)
	if !posRe.MatchString(out.String()) {
		t.Errorf("output lacks a position-accurate time.Now finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("output lacks the findings summary:\n%s", out.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"internal/stats"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package should print nothing, got:\n%s", out.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"no/such/package"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "iolint:") {
		t.Errorf("load errors must be reported on stderr, got: %s", errw.String())
	}
}

// chdir moves the process into dir for the duration of the test (the
// CLI resolves the module root from the working directory).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// TestParseErrorExitsTwo pins the load-failure contract: a module
// whose source does not parse must exit 2 (analysis did not cover the
// tree), never 0 — a partial analysis must not masquerade as clean.
func TestParseErrorExitsTwo(t *testing.T) {
	tmp := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module brokenmod\n\ngo 1.22\n")
	writeFile("broken.go", "package brokenmod\n\nfunc f( {\n")
	chdir(t, tmp)

	var out, errw strings.Builder
	if code := run([]string{"./..."}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "iolint:") {
		t.Errorf("parse errors must be reported on stderr, got: %s", errw.String())
	}
}

// TestJSONFindings pins the machine-readable output CI annotates
// from: an array of objects with file/line/col/check/message/fixable.
func TestJSONFindings(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-json", "internal/lint/testdata/src/determinism"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errw.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
		Fixable bool   `json:"fixable"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json reported no findings for the determinism fixture")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Check == "" || f.Message == "" {
			t.Errorf("finding with empty fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute, want module-relative", f.File)
		}
	}
}

// TestJSONCleanIsEmptyArray pins that a clean run emits [] (never
// null), so `jq '.[]'` works unconditionally in CI.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-json", "internal/stats"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestFactsDump spot-checks the -facts debugging surface: exit 0 and
// at least one fact rendered in the `pkg.obj kind = fact` shape.
func TestFactsDump(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-facts", "internal/fault"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(out.String(), "ioeval/internal/fault.Apply faultplan = consumes(") {
		t.Errorf("-facts output lacks the fault.Apply consumer fact:\n%s", out.String())
	}
}
