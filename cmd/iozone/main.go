// Command iozone runs the IOzone-like filesystem characterization
// sweep against a simulated cluster, at either the I/O node's local
// filesystem or a compute node's NFS mount.
//
// Usage:
//
//	iozone [-org jbod|raid1|raid5] [-target local|nfs]
//	       [-file 4096] [-min 32] [-max 16384] [-modes seq,rand,stride]
//	       [-store DIR]
//
// With -store, the cluster's characterized table for the targeted
// level (from the content-addressed store, computed on a first miss)
// is printed alongside the fresh sweep.
package main

import (
	"flag"
	"fmt"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
)

func main() {
	orgName := flag.String("org", "raid5", "device organization: jbod, raid1 or raid5")
	target := flag.String("target", "local", "filesystem under test: local (I/O node) or nfs")
	fileMB := flag.Int64("file", 4096, "file size in MiB (paper rule: 2x RAM)")
	minKB := flag.Int64("min", 32, "smallest block size in KiB")
	maxKB := flag.Int64("max", 16384, "largest block size in KiB")
	modesArg := flag.String("modes", "seq", "comma list of: seq, rand, stride")
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	org, err := cliutil.ParseOrg(*orgName)
	if err != nil {
		cliutil.Fatal(err)
	}
	c := cluster.Aohyper(org)

	var fsi fs.Interface = c.ServerFS
	if *target == "nfs" {
		fsi = c.Nodes[0].NFS
	}

	var modes []bench.Mode
	for _, m := range cliutil.SplitList(*modesArg) {
		switch m {
		case "seq":
			modes = append(modes, bench.SeqWrite, bench.SeqRead)
		case "rand":
			modes = append(modes, bench.RandWrite, bench.RandRead)
		case "stride":
			modes = append(modes, bench.StrideWrite, bench.StrideRead)
		default:
			cliutil.Fatal(fmt.Errorf("unknown mode %q", m))
		}
	}

	var blockSizes []int64
	for bs := *minKB << 10; bs <= *maxKB<<10; bs *= 2 {
		blockSizes = append(blockSizes, bs)
	}

	results, err := bench.RunIOzone(c.Eng, fsi, bench.IOzoneConfig{
		FileSize:   *fileMB << 20,
		BlockSizes: blockSizes,
		Modes:      modes,
		RandomOps:  4096,
		BetweenRuns: func(p *sim.Proc) {
			m := ioreq.Meta(p)
			c.IOCache.DropCaches(m)
			c.Nodes[0].NFS.DropCaches(m)
		},
	})
	if err != nil {
		cliutil.Fatal(err)
	}

	fmt.Printf("IOzone-like sweep — %s, %s target, file %d MiB\n\n", org, *target, *fileMB)
	var tb stats.Table
	tb.AddRow("mode", "block", "rate", "IOPS", "latency")
	for _, r := range results {
		tb.AddRow(r.Mode.String(), stats.IBytes(r.BlockSize), stats.MBs(r.Rate),
			fmt.Sprintf("%.0f", r.IOPS), r.Latency.String())
	}
	fmt.Println(tb.String())

	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		build, err := cliutil.ClusterBuilder("aohyper", org, 0)
		if err != nil {
			cliutil.Fatal(err)
		}
		sess := core.NewSession(build,
			core.WithStore(st),
			core.WithCharacterizeWorkers(*charWorkers),
			core.WithCharacterizeConfig(cliutil.CharConfig(true, false)))
		ch, err := sess.Characterization()
		if err != nil {
			cliutil.Fatal(err)
		}
		level := core.LevelLocalFS
		if *target == "nfs" {
			level = core.LevelNFS
		}
		fmt.Printf("Stored %s baseline:\n", level)
		fmt.Println(core.FormatPerfTable(ch.Table(level)))
		fmt.Println(cliutil.StoreSummary(st))
	}
}
