// Command iozone runs the IOzone-like filesystem characterization
// sweep against a simulated cluster, at either the I/O node's local
// filesystem or a compute node's NFS mount.
//
// Usage:
//
//	iozone [-org jbod|raid1|raid5] [-target local|nfs]
//	       [-file 4096] [-min 32] [-max 16384] [-modes seq,rand,stride]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
)

func main() {
	orgName := flag.String("org", "raid5", "device organization: jbod, raid1 or raid5")
	target := flag.String("target", "local", "filesystem under test: local (I/O node) or nfs")
	fileMB := flag.Int64("file", 4096, "file size in MiB (paper rule: 2x RAM)")
	minKB := flag.Int64("min", 32, "smallest block size in KiB")
	maxKB := flag.Int64("max", 16384, "largest block size in KiB")
	modesArg := flag.String("modes", "seq", "comma list of: seq, rand, stride")
	flag.Parse()

	var org cluster.Organization
	switch *orgName {
	case "jbod":
		org = cluster.JBOD
	case "raid1":
		org = cluster.RAID1
	case "raid5":
		org = cluster.RAID5
	default:
		fatal(fmt.Errorf("unknown organization %q", *orgName))
	}
	c := cluster.Aohyper(org)

	var fsi fs.Interface = c.ServerFS
	if *target == "nfs" {
		fsi = c.Nodes[0].NFS
	}

	var modes []bench.Mode
	for _, m := range strings.Split(*modesArg, ",") {
		switch strings.TrimSpace(m) {
		case "seq":
			modes = append(modes, bench.SeqWrite, bench.SeqRead)
		case "rand":
			modes = append(modes, bench.RandWrite, bench.RandRead)
		case "stride":
			modes = append(modes, bench.StrideWrite, bench.StrideRead)
		default:
			fatal(fmt.Errorf("unknown mode %q", m))
		}
	}

	var blockSizes []int64
	for bs := *minKB << 10; bs <= *maxKB<<10; bs *= 2 {
		blockSizes = append(blockSizes, bs)
	}

	results, err := bench.RunIOzone(c.Eng, fsi, bench.IOzoneConfig{
		FileSize:   *fileMB << 20,
		BlockSizes: blockSizes,
		Modes:      modes,
		RandomOps:  4096,
		BetweenRuns: func(p *sim.Proc) {
			m := ioreq.Meta(p)
			c.IOCache.DropCaches(m)
			c.Nodes[0].NFS.DropCaches(m)
		},
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("IOzone-like sweep — %s, %s target, file %d MiB\n\n", org, *target, *fileMB)
	var tb stats.Table
	tb.AddRow("mode", "block", "rate", "IOPS", "latency")
	for _, r := range results {
		tb.AddRow(r.Mode.String(), stats.IBytes(r.BlockSize), stats.MBs(r.Rate),
			fmt.Sprintf("%.0f", r.IOPS), r.Latency.String())
	}
	fmt.Println(tb.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iozone:", err)
	os.Exit(1)
}
