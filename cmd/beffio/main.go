// Command beffio runs the b_eff_io-like effective-bandwidth benchmark
// (the paper's second option for library-level characterization):
// three access-pattern families across transfer sizes, reduced to one
// effective bandwidth number.
//
// Usage:
//
//	beffio [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	       [-procs 8] [-bytes 64] [-store DIR]
//
// With -store, the cluster's characterized library-level table (from
// the content-addressed store, computed on a first miss) is printed
// alongside the fresh run.
package main

import (
	"flag"
	"fmt"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/bench"
	"ioeval/internal/core"
	"ioeval/internal/stats"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization")
	procs := flag.Int("procs", 8, "processes")
	bytesMB := flag.Int64("bytes", 64, "MiB per rank per measurement")
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	org, err := cliutil.ParseOrg(*orgName)
	if err != nil {
		cliutil.Fatal(err)
	}
	build, err := cliutil.ClusterBuilder(*platform, org, 0)
	if err != nil {
		cliutil.Fatal(err)
	}
	c := build()

	sum, err := bench.RunBeffIO(c, bench.BeffIOConfig{
		Procs:        *procs,
		BytesPerRank: *bytesMB << 20,
	})
	if err != nil {
		cliutil.Fatal(err)
	}

	fmt.Printf("b_eff_io-like run — %s, %d procs, %d MiB/rank per pattern\n\n",
		c.Cfg.Name, *procs, *bytesMB)
	var tb stats.Table
	tb.AddRow("pattern", "transfer", "write", "read")
	for _, r := range sum.Results {
		tb.AddRow(r.Pattern.String(), stats.IBytes(r.TransferSize),
			stats.MBs(r.WriteRate), stats.MBs(r.ReadRate))
	}
	fmt.Println(tb.String())
	fmt.Printf("b_eff_io = %s\n", stats.MBs(sum.BeffIO))

	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		sess := core.NewSession(build,
			core.WithStore(st),
			core.WithCharacterizeWorkers(*charWorkers),
			core.WithCharacterizeConfig(cliutil.CharConfig(true, false)))
		ch, err := sess.Characterization()
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Println()
		fmt.Println("Stored library-level baseline:")
		fmt.Println(core.FormatPerfTable(ch.Table(core.LevelIOLib)))
		fmt.Println(cliutil.StoreSummary(st))
	}
}
