// Command beffio runs the b_eff_io-like effective-bandwidth benchmark
// (the paper's second option for library-level characterization):
// three access-pattern families across transfer sizes, reduced to one
// effective bandwidth number.
//
// Usage:
//
//	beffio [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	       [-procs 8] [-bytes 64]
package main

import (
	"flag"
	"fmt"
	"os"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/stats"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization")
	procs := flag.Int("procs", 8, "processes")
	bytesMB := flag.Int64("bytes", 64, "MiB per rank per measurement")
	flag.Parse()

	var c *cluster.Cluster
	if *platform == "clusterA" {
		c = cluster.ClusterA()
	} else {
		switch *orgName {
		case "jbod":
			c = cluster.Aohyper(cluster.JBOD)
		case "raid1":
			c = cluster.Aohyper(cluster.RAID1)
		case "raid5":
			c = cluster.Aohyper(cluster.RAID5)
		default:
			fmt.Fprintf(os.Stderr, "beffio: unknown organization %q\n", *orgName)
			os.Exit(1)
		}
	}

	sum, err := bench.RunBeffIO(c, bench.BeffIOConfig{
		Procs:        *procs,
		BytesPerRank: *bytesMB << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "beffio:", err)
		os.Exit(1)
	}

	fmt.Printf("b_eff_io-like run — %s, %d procs, %d MiB/rank per pattern\n\n",
		c.Cfg.Name, *procs, *bytesMB)
	var tb stats.Table
	tb.AddRow("pattern", "transfer", "write", "read")
	for _, r := range sum.Results {
		tb.AddRow(r.Pattern.String(), stats.IBytes(r.TransferSize),
			stats.MBs(r.WriteRate), stats.MBs(r.ReadRate))
	}
	fmt.Println(tb.String())
	fmt.Printf("b_eff_io = %s\n", stats.MBs(sum.BeffIO))
}
