// Command iosweep fans the paper's three-phase methodology out over a
// grid of candidate I/O configurations and ranks the results: every
// (platform × device organization × I/O-node count) cell is
// characterized once, every workload is evaluated on every cell on a
// bounded worker pool, and the ranked report recommends the best
// configuration per application.
//
// Usage:
//
//	iosweep [-platforms aohyper,clusterA] [-orgs jbod,raid1,raid5]
//	        [-pfs 0,2,4] [-apps btio-full,btio-simple,madbench-shared,madbench-unique,flashio]
//	        [-procs N] [-workers N] [-rank io-time|used-pct|throughput]
//	        [-fault none,disk-fail,...] [-seed N] [-quick] [-json FILE]
//	        [-store DIR]
//
// -fault adds a fault-scenario axis: each named scenario adds a
// degraded variant of every cell ("none" is the healthy run), so the
// ranking shows how each configuration holds up under failure.
// -store persists characterizations across runs: a warm re-run of
// the same grid performs zero characterizations and produces a
// byte-identical report.
package main

import (
	"flag"
	"fmt"
	"strconv"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/fault"
	"ioeval/internal/sim"
	"ioeval/internal/sweep"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/flashio"
	"ioeval/internal/workload/madbench"
)

func main() {
	platforms := flag.String("platforms", "aohyper", "comma-separated platforms: aohyper, clusterA")
	orgs := flag.String("orgs", "jbod,raid1,raid5", "comma-separated device organizations")
	pfs := flag.String("pfs", "0", "comma-separated I/O-node counts (0 = NFS path, n > 0 = parallel FS over n I/O nodes)")
	apps := flag.String("apps", "btio-full,btio-simple", "comma-separated workloads: btio-full, btio-simple, madbench-shared, madbench-unique, flashio")
	procs := flag.Int("procs", 16, "MPI processes per workload (btio needs a square)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	rankName := flag.String("rank", "io-time", "ranking metric: io-time, used-pct or throughput")
	quick := flag.Bool("quick", false, "reduced characterization and class A BT-IO (fast demo)")
	jsonOut := flag.String("json", "", "write the ranked report to this JSON file")
	faults := cliutil.FaultListFlag(flag.CommandLine)
	seed := cliutil.SeedFlag(flag.CommandLine)
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	rank, err := sweep.ParseMetric(*rankName)
	if err != nil {
		cliutil.Fatal(err)
	}
	spec := sweep.GridSpec{Char: cliutil.CharConfig(*quick, false)}
	for _, p := range cliutil.SplitList(*platforms) {
		cfg, err := cliutil.PlatformConfig(p)
		if err != nil {
			cliutil.Fatal(err)
		}
		spec.Platforms = append(spec.Platforms, cfg)
	}
	for _, o := range cliutil.SplitList(*orgs) {
		org, err := cliutil.ParseOrg(o)
		if err != nil {
			cliutil.Fatal(err)
		}
		spec.Orgs = append(spec.Orgs, org)
	}
	for _, s := range cliutil.SplitList(*pfs) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			cliutil.Fatal(fmt.Errorf("bad -pfs entry %q", s))
		}
		spec.PFSIONodes = append(spec.PFSIONodes, n)
	}
	for _, a := range cliutil.SplitList(*apps) {
		app, err := appSpec(a, *procs, *quick)
		if err != nil {
			cliutil.Fatal(err)
		}
		spec.Apps = append(spec.Apps, app)
	}
	for _, f := range cliutil.SplitList(*faults) {
		if f == "none" {
			spec.Scenarios = append(spec.Scenarios, fault.Plan{})
			continue
		}
		plan, err := cliutil.FaultPlan(f, *seed)
		if err != nil {
			cliutil.Fatal(err)
		}
		spec.Scenarios = append(spec.Scenarios, *plan)
	}

	grid := spec.Grid()
	eng := sweep.NewEngine(*workers)
	eng.SetCharWorkers(*charWorkers)
	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		eng.SetStore(st)
	}
	fmt.Printf("sweeping %d configurations × %d workloads on %d workers ...\n",
		len(grid.Configs), len(spec.Apps), eng.Workers())
	rep, err := eng.Run(grid, rank)
	if err != nil {
		cliutil.Fatal(err)
	}
	fmt.Println(rep)
	snap := eng.Snapshot()
	fmt.Printf("engine: %d characterizations (%d cache hits), %d evaluations (%d cache hits)\n",
		snap.Counters.Aux["characterizations"], snap.Counters.Aux["char_cache_hits"],
		snap.Counters.Aux["evaluations"], snap.Counters.Aux["eval_cache_hits"])
	if st != nil {
		fmt.Println(cliutil.StoreSummary(st))
	}
	if *jsonOut != "" {
		if err := rep.WriteFile(*jsonOut); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Printf("(report written to %s)\n", *jsonOut)
	}
}

func appSpec(name string, procs int, quick bool) (sweep.AppSpec, error) {
	class := btio.ClassC
	if quick {
		class = btio.ClassA
	}
	kpix := 18
	if quick {
		kpix = 4
	}
	switch name {
	case "btio-full", "btio-simple":
		st := btio.Full
		if name == "btio-simple" {
			st = btio.Simple
		}
		return sweep.AppSpec{Name: name, New: func() workload.App {
			return btio.New(btio.Config{Class: class, Procs: procs, Subtype: st, ComputeScale: 1})
		}}, nil
	case "madbench-shared", "madbench-unique":
		ft := madbench.Shared
		if name == "madbench-unique" {
			ft = madbench.Unique
		}
		return sweep.AppSpec{Name: name, New: func() workload.App {
			return madbench.New(madbench.Config{Procs: procs, KPix: kpix, FileType: ft, BusyWork: sim.Second})
		}}, nil
	case "flashio":
		return sweep.AppSpec{Name: name, New: func() workload.App {
			return flashio.New(flashio.Config{Procs: procs, Compute: 5 * sim.Second})
		}}, nil
	}
	return sweep.AppSpec{}, fmt.Errorf("unknown app %q", name)
}
