// Command iosweep fans the paper's three-phase methodology out over a
// grid of candidate I/O configurations and ranks the results: every
// (platform × device organization × I/O-node count) cell is
// characterized once, every workload is evaluated on every cell on a
// bounded worker pool, and the ranked report recommends the best
// configuration per application.
//
// Usage:
//
//	iosweep [-platforms aohyper,clusterA] [-orgs jbod,raid1,raid5]
//	        [-pfs 0,2,4] [-apps btio-full,btio-simple,madbench-shared,madbench-unique,flashio]
//	        [-procs N] [-workers N] [-rank io-time|used-pct|throughput]
//	        [-fault none,disk-fail,...] [-quick] [-json FILE]
//
// -fault adds a fault-scenario axis: each named scenario adds a
// degraded variant of every cell ("none" is the healthy run), so the
// ranking shows how each configuration holds up under failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fault"
	"ioeval/internal/sim"
	"ioeval/internal/sweep"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/flashio"
	"ioeval/internal/workload/madbench"
)

func main() {
	platforms := flag.String("platforms", "aohyper", "comma-separated platforms: aohyper, clusterA")
	orgs := flag.String("orgs", "jbod,raid1,raid5", "comma-separated device organizations")
	pfs := flag.String("pfs", "0", "comma-separated I/O-node counts (0 = NFS path, n > 0 = parallel FS over n I/O nodes)")
	apps := flag.String("apps", "btio-full,btio-simple", "comma-separated workloads: btio-full, btio-simple, madbench-shared, madbench-unique, flashio")
	procs := flag.Int("procs", 16, "MPI processes per workload (btio needs a square)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	rankName := flag.String("rank", "io-time", "ranking metric: io-time, used-pct or throughput")
	quick := flag.Bool("quick", false, "reduced characterization and class A BT-IO (fast demo)")
	jsonOut := flag.String("json", "", "write the ranked report to this JSON file")
	faults := flag.String("fault", "", "comma-separated fault scenarios to sweep (none = healthy run): none, "+strings.Join(fault.BuiltinNames(), ", "))
	flag.Parse()

	rank, err := sweep.ParseMetric(*rankName)
	if err != nil {
		fatal(err)
	}
	spec := sweep.GridSpec{Char: charConfig(*quick)}
	for _, p := range split(*platforms) {
		cfg, err := platformConfig(p)
		if err != nil {
			fatal(err)
		}
		spec.Platforms = append(spec.Platforms, cfg)
	}
	for _, o := range split(*orgs) {
		org, err := parseOrg(o)
		if err != nil {
			fatal(err)
		}
		spec.Orgs = append(spec.Orgs, org)
	}
	for _, s := range split(*pfs) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			fatal(fmt.Errorf("bad -pfs entry %q", s))
		}
		spec.PFSIONodes = append(spec.PFSIONodes, n)
	}
	for _, a := range split(*apps) {
		app, err := appSpec(a, *procs, *quick)
		if err != nil {
			fatal(err)
		}
		spec.Apps = append(spec.Apps, app)
	}
	for _, f := range split(*faults) {
		if f == "none" {
			spec.Scenarios = append(spec.Scenarios, fault.Plan{})
			continue
		}
		plan, err := fault.Builtin(f)
		if err != nil {
			fatal(err)
		}
		spec.Scenarios = append(spec.Scenarios, plan)
	}

	grid := spec.Grid()
	eng := sweep.NewEngine(*workers)
	fmt.Printf("sweeping %d configurations × %d workloads on %d workers ...\n",
		len(grid.Configs), len(spec.Apps), eng.Workers())
	rep, err := eng.Run(grid, rank)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	snap := eng.Snapshot()
	fmt.Printf("engine: %d characterizations (%d cache hits), %d evaluations (%d cache hits)\n",
		snap.Counters.Aux["characterizations"], snap.Counters.Aux["char_cache_hits"],
		snap.Counters.Aux["evaluations"], snap.Counters.Aux["eval_cache_hits"])
	if *jsonOut != "" {
		if err := rep.WriteFile(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Printf("(report written to %s)\n", *jsonOut)
	}
}

func split(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func platformConfig(name string) (cluster.Config, error) {
	switch name {
	case "aohyper":
		return cluster.Aohyper(cluster.JBOD).Cfg, nil
	case "clusterA":
		return cluster.ClusterA().Cfg, nil
	}
	return cluster.Config{}, fmt.Errorf("unknown platform %q", name)
}

func parseOrg(s string) (cluster.Organization, error) {
	switch s {
	case "jbod":
		return cluster.JBOD, nil
	case "raid1":
		return cluster.RAID1, nil
	case "raid5":
		return cluster.RAID5, nil
	}
	return 0, fmt.Errorf("unknown organization %q", s)
}

func charConfig(quick bool) core.CharacterizeConfig {
	cfg := core.DefaultCharacterizeConfig()
	if quick {
		cfg.FSBlockSizes = []int64{64 << 10, 1 << 20, 4 << 20}
		cfg.FSModes = []bench.Mode{bench.SeqWrite, bench.SeqRead}
		cfg.LocalFileSize = 512 << 20
		cfg.GlobalFileSize = 512 << 20
		cfg.LibBlockSizes = []int64{4 << 20, 32 << 20}
		cfg.LibFileSize = 256 << 20
		cfg.LibProcs = 4
	}
	return cfg
}

func appSpec(name string, procs int, quick bool) (sweep.AppSpec, error) {
	class := btio.ClassC
	if quick {
		class = btio.ClassA
	}
	kpix := 18
	if quick {
		kpix = 4
	}
	switch name {
	case "btio-full", "btio-simple":
		st := btio.Full
		if name == "btio-simple" {
			st = btio.Simple
		}
		return sweep.AppSpec{Name: name, New: func() workload.App {
			return btio.New(btio.Config{Class: class, Procs: procs, Subtype: st, ComputeScale: 1})
		}}, nil
	case "madbench-shared", "madbench-unique":
		ft := madbench.Shared
		if name == "madbench-unique" {
			ft = madbench.Unique
		}
		return sweep.AppSpec{Name: name, New: func() workload.App {
			return madbench.New(madbench.Config{Procs: procs, KPix: kpix, FileType: ft, BusyWork: sim.Second})
		}}, nil
	case "flashio":
		return sweep.AppSpec{Name: name, New: func() workload.App {
			return flashio.New(flashio.Config{Procs: procs, Compute: 5 * sim.Second})
		}}, nil
	}
	return sweep.AppSpec{}, fmt.Errorf("unknown app %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iosweep:", err)
	os.Exit(1)
}
