// Command tracetool captures and analyzes application I/O traces —
// the workflow of the paper's PAS2P tracing extension. It can run a
// workload on a simulated cluster and dump the trace as JSON lines,
// or load a previously captured trace and report the application
// characterization, the detected phases with weights (the signature)
// and the Jumpshot-style timeline.
//
// Capture:
//
//	tracetool -capture btio -procs 16 -out btio.trace
//	tracetool -capture madbench -procs 16 -out mad.trace
//
// Analyze:
//
//	tracetool -in btio.trace -profile -signature -timeline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
)

func main() {
	capture := flag.String("capture", "", "workload to capture: btio or madbench (empty = analyze)")
	procs := flag.Int("procs", 16, "processes for capture")
	subtype := flag.String("subtype", "full", "BT-IO subtype for capture")
	out := flag.String("out", "", "output trace file for capture")
	in := flag.String("in", "", "input trace file for analysis")
	profile := flag.Bool("profile", true, "print the application characterization")
	signature := flag.Bool("signature", false, "print the phase signature per rank 0")
	timeline := flag.Bool("timeline", false, "print the timeline")
	csvOut := flag.String("csv", "", "export raw events as CSV to this file")
	phasesCSV := flag.String("phases-csv", "", "export detected phases as CSV to this file")
	inferOut := flag.String("infer-spec", "", "infer a synthetic-workload spec (runnable via iosynth) from the trace and write it to this JSON file")
	quick := flag.Bool("quick", true, "reduced problem sizes for capture")
	flag.Parse()

	switch {
	case *capture != "":
		if *out == "" {
			cliutil.Fatal(fmt.Errorf("-capture needs -out"))
		}
		tr := trace.New()
		var app workload.App
		switch *capture {
		case "btio":
			class := btio.ClassC
			if *quick {
				class = btio.ClassA
			}
			st := btio.Full
			if *subtype == "simple" {
				st = btio.Simple
			}
			app = btio.New(btio.Config{Class: class, Procs: *procs, Subtype: st, ComputeScale: 1})
		case "madbench":
			kpix := 18
			if *quick {
				kpix = 4
			}
			app = madbench.New(madbench.Config{Procs: *procs, KPix: kpix, FileType: madbench.Shared, BusyWork: sim.Second})
		default:
			cliutil.Fatal(fmt.Errorf("unknown workload %q", *capture))
		}
		c := cluster.Aohyper(cluster.RAID5)
		fmt.Fprintf(os.Stderr, "capturing %s ...\n", app.Name())
		if _, err := app.Run(c, tr); err != nil {
			cliutil.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			cliutil.Fatal(err)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", len(tr.Events()), *out)

	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			cliutil.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadJSON(f)
		if err != nil {
			cliutil.Fatal(err)
		}
		if *profile {
			fmt.Println(core.FormatProfile(*in, tr.Profile()))
		}
		if *signature {
			fmt.Println("Signature (rank 0):")
			for _, s := range tr.Signature(0) {
				fmt.Printf("  %-5s %-10s ops=%-8d bytes=%-10s rate=%-12s weight=%d\n",
					s.Phase.Kind, s.Phase.Mode, s.Phase.Ops,
					stats.IBytes(s.Phase.Bytes), stats.MBs(s.Phase.TransferRate()), s.Weight)
			}
			fmt.Println()
		}
		if *timeline {
			fmt.Println(trace.Timeline{Width: 110}.Render(tr.Events()))
		}
		if *csvOut != "" {
			if err := cliutil.WriteFileFn(*csvOut, tr.WriteCSV); err != nil {
				cliutil.Fatal(err)
			}
		}
		if *phasesCSV != "" {
			ranks := tr.Profile().NumProcs
			if err := cliutil.WriteFileFn(*phasesCSV, func(w io.Writer) error { return tr.PhaseCSV(w, ranks) }); err != nil {
				cliutil.Fatal(err)
			}
		}
		if *inferOut != "" {
			spec, err := trace.InferSpec(tr, *in)
			if err != nil {
				cliutil.Fatal(err)
			}
			if err := cliutil.WriteFileFn(*inferOut, spec.WriteJSON); err != nil {
				cliutil.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "inferred %d-phase spec for %d ranks to %s\n",
				len(spec.Phases), spec.Procs, *inferOut)
		}

	default:
		cliutil.FatalUsage()
	}
}
