// Command iomethod runs the paper's full three-phase methodology on a
// simulated cluster: characterize the I/O system at every level of
// the I/O path, analyze the configuration's factors, run an
// application under the tracer and report the used-percentage tables.
//
// Usage:
//
//	iomethod [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	         [-app btio|madbench] [-procs N] [-subtype full|simple]
//	         [-filetype unique|shared] [-quick] [-fault scenario] [-seed N]
//	         [-spans] [-store DIR]
//
// With -fault, the application is evaluated twice — healthy and under
// the named fault scenario — and the used-% tables are reported side
// by side. With -store, the characterization is looked up in (and
// persisted to) the content-addressed store, so repeated runs against
// the same configuration skip phase 1 entirely.
package main

import (
	"flag"
	"fmt"
	"os"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/core"
	"ioeval/internal/sim"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/flashio"
	"ioeval/internal/workload/madbench"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster to simulate: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization: jbod, raid1 or raid5")
	appName := flag.String("app", "btio", "application: btio, madbench or flashio")
	procs := flag.Int("procs", 16, "MPI processes (must be a square)")
	subtype := flag.String("subtype", "full", "BT-IO subtype: full or simple")
	filetype := flag.String("filetype", "shared", "MADbench2 filetype: unique or shared")
	quick := flag.Bool("quick", false, "reduced characterization and class A BT-IO (fast demo)")
	utilization := flag.Bool("utilization", false, "print the cluster utilization report after evaluation")
	pfsNodes := flag.Int("pfs", 0, "deploy a PVFS-like parallel FS over N I/O nodes and run against it")
	saveChar := flag.String("save-char", "", "write the characterization to this JSON file")
	loadChar := flag.String("load-char", "", "reuse a characterization from this JSON file (skips phase 1 system side)")
	metrics := cliutil.MetricsFlag(flag.CommandLine)
	faultName := cliutil.FaultFlag(flag.CommandLine)
	seed := cliutil.SeedFlag(flag.CommandLine)
	spans := cliutil.SpansFlag(flag.CommandLine)
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	org, err := cliutil.ParseOrg(*orgName)
	if err != nil {
		cliutil.Fatal(err)
	}
	build, err := cliutil.ClusterBuilder(*platform, org, *pfsNodes)
	if err != nil {
		cliutil.Fatal(err)
	}
	usePFS := *pfsNodes > 0

	fmt.Println("== Phase 2 preview: I/O configuration analysis ==")
	fmt.Println(core.AnalyzeConfiguration(build()))

	fmt.Println("== Phase 1: characterization (system side) ==")
	opts := []core.SessionOption{core.WithCharacterizeWorkers(*charWorkers)}
	plan, err := cliutil.FaultPlan(*faultName, *seed)
	if err != nil {
		cliutil.Fatal(err)
	}
	if plan != nil {
		opts = append(opts, core.WithFaultPlan(*plan))
	}
	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		opts = append(opts, core.WithStore(st))
	}
	if *loadChar != "" {
		f, err := os.Open(*loadChar)
		if err != nil {
			cliutil.Fatal(err)
		}
		ch, err := core.ReadCharacterizationJSON(f)
		_ = f.Close() // read-only; a close error cannot lose data
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Printf("(loaded characterization of %s from %s)\n", ch.Config, *loadChar)
		opts = append(opts, core.WithCharacterization(ch))
	} else {
		opts = append(opts, core.WithCharacterizeConfig(cliutil.CharConfig(*quick, usePFS)))
	}
	sess := core.NewSession(build, opts...)
	ch, err := sess.Characterization()
	if err != nil {
		cliutil.Fatal(err)
	}
	if *saveChar != "" {
		if err := cliutil.WriteFileFn(*saveChar, ch.WriteJSON); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Printf("(characterization saved to %s)\n", *saveChar)
	}
	for _, level := range core.Levels() {
		fmt.Println(core.FormatPerfTable(ch.Table(level)))
	}

	var app workload.App
	switch *appName {
	case "btio":
		class := btio.ClassC
		if *quick {
			class = btio.ClassA
		}
		sub := btio.Full
		if *subtype == "simple" {
			sub = btio.Simple
		}
		app = btio.New(btio.Config{Class: class, Procs: *procs, Subtype: sub, ComputeScale: 1, UsePFS: usePFS})
	case "madbench":
		ft := madbench.Shared
		if *filetype == "unique" {
			ft = madbench.Unique
		}
		kpix := 18
		if *quick {
			kpix = 4
		}
		app = madbench.New(madbench.Config{Procs: *procs, KPix: kpix, FileType: ft, BusyWork: sim.Second})
	case "flashio":
		app = flashio.New(flashio.Config{Procs: *procs, Compute: 5 * sim.Second})
	default:
		cliutil.Fatal(fmt.Errorf("unknown app %q", *appName))
	}

	fmt.Printf("== Phase 1: characterization (application side) + Phase 3: evaluation ==\n")
	fmt.Printf("running %s ...\n\n", app.Name())
	rep, err := sess.Run(app)
	if err != nil {
		cliutil.Fatal(err)
	}
	ev := rep.Evaluation
	fmt.Println(core.FormatProfile(ev.AppName(), ev.Profile()))
	fmt.Println(core.FormatEvaluation(ev))
	if *spans {
		fmt.Println(core.FormatPathReport(ev.PathReport()))
	}
	if rep.Degraded != nil {
		fmt.Printf("== Phase 3 (degraded): evaluation under fault scenario %q ==\n", rep.Scenario)
		fmt.Println(core.FormatEvaluation(rep.Degraded))
		if *spans {
			fmt.Println(core.FormatPathReport(rep.Degraded.PathReport()))
		}
		fmt.Println("Healthy vs degraded:")
		fmt.Println(core.FormatUsedComparison(ev.Used(), rep.Degraded.Used()))
	}
	if *utilization {
		fmt.Println(rep.Utilization)
		if rep.Degraded != nil {
			fmt.Println("Utilization under fault scenario:")
			fmt.Println(rep.DegradedUtilization)
		}
	}
	if *metrics != "" {
		if err := cliutil.WriteMetrics(*metrics, ev.TelemetryReport(), st); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Printf("(telemetry report written to %s)\n", *metrics)
	}
	if st != nil {
		fmt.Println(cliutil.StoreSummary(st))
	}
}
