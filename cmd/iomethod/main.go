// Command iomethod runs the paper's full three-phase methodology on a
// simulated cluster: characterize the I/O system at every level of
// the I/O path, analyze the configuration's factors, run an
// application under the tracer and report the used-percentage tables.
//
// Usage:
//
//	iomethod [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	         [-app btio|madbench] [-procs N] [-subtype full|simple]
//	         [-filetype unique|shared] [-quick] [-fault scenario] [-spans]
//
// With -fault, the application is evaluated twice — healthy and under
// the named fault scenario — and the used-% tables are reported side
// by side.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fault"
	"ioeval/internal/sim"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/flashio"
	"ioeval/internal/workload/madbench"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster to simulate: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization: jbod, raid1 or raid5")
	appName := flag.String("app", "btio", "application: btio, madbench or flashio")
	procs := flag.Int("procs", 16, "MPI processes (must be a square)")
	subtype := flag.String("subtype", "full", "BT-IO subtype: full or simple")
	filetype := flag.String("filetype", "shared", "MADbench2 filetype: unique or shared")
	quick := flag.Bool("quick", false, "reduced characterization and class A BT-IO (fast demo)")
	utilization := flag.Bool("utilization", false, "print the cluster utilization report after evaluation")
	pfsNodes := flag.Int("pfs", 0, "deploy a PVFS-like parallel FS over N I/O nodes and run against it")
	saveChar := flag.String("save-char", "", "write the characterization to this JSON file")
	loadChar := flag.String("load-char", "", "reuse a characterization from this JSON file (skips phase 1 system side)")
	metrics := flag.String("metrics", "", "write the telemetry report (per-level rates, per-phase component snapshots) to this JSON file")
	faultName := flag.String("fault", "", "also evaluate under a fault scenario: "+strings.Join(fault.BuiltinNames(), ", "))
	spans := flag.Bool("spans", false, "print the span-based path report (per-level time attribution cross-checked against the used-% verdict)")
	flag.Parse()

	org, err := parseOrg(*orgName)
	if err != nil {
		fatal(err)
	}
	build := func() *cluster.Cluster {
		var cfg cluster.Config
		if *platform == "clusterA" {
			cfg = cluster.ClusterA().Cfg
		} else {
			cfg = cluster.Aohyper(org).Cfg
		}
		cfg.PFSIONodes = *pfsNodes
		return cluster.New(cfg)
	}
	usePFS := *pfsNodes > 0

	fmt.Println("== Phase 2 preview: I/O configuration analysis ==")
	fmt.Println(core.AnalyzeConfiguration(build()))

	fmt.Println("== Phase 1: characterization (system side) ==")
	opts := []core.SessionOption{}
	if *faultName != "" {
		plan, err := fault.Builtin(*faultName)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, core.WithFaultPlan(plan))
	}
	if *loadChar != "" {
		f, err := os.Open(*loadChar)
		if err != nil {
			fatal(err)
		}
		ch, err := core.ReadCharacterizationJSON(f)
		_ = f.Close() // read-only; a close error cannot lose data
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(loaded characterization of %s from %s)\n", ch.Config, *loadChar)
		opts = append(opts, core.WithCharacterization(ch))
	} else {
		cfg := core.DefaultCharacterizeConfig()
		cfg.UsePFS = usePFS
		if *quick {
			cfg.FSBlockSizes = []int64{64 << 10, 1 << 20, 4 << 20}
			cfg.FSModes = []bench.Mode{bench.SeqWrite, bench.SeqRead}
			cfg.LocalFileSize = 512 << 20
			cfg.GlobalFileSize = 512 << 20
			cfg.LibBlockSizes = []int64{4 << 20, 32 << 20}
			cfg.LibFileSize = 256 << 20
			cfg.LibProcs = 4
		}
		opts = append(opts, core.WithCharacterizeConfig(cfg))
	}
	sess := core.NewSession(build, opts...)
	ch, err := sess.Characterization()
	if err != nil {
		fatal(err)
	}
	if *saveChar != "" {
		f, err := os.Create(*saveChar)
		if err != nil {
			fatal(err)
		}
		if err := ch.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("(characterization saved to %s)\n", *saveChar)
	}
	for _, level := range core.Levels() {
		fmt.Println(core.FormatPerfTable(ch.Table(level)))
	}

	var app workload.App
	switch *appName {
	case "btio":
		class := btio.ClassC
		if *quick {
			class = btio.ClassA
		}
		st := btio.Full
		if *subtype == "simple" {
			st = btio.Simple
		}
		app = btio.New(btio.Config{Class: class, Procs: *procs, Subtype: st, ComputeScale: 1, UsePFS: usePFS})
	case "madbench":
		ft := madbench.Shared
		if *filetype == "unique" {
			ft = madbench.Unique
		}
		kpix := 18
		if *quick {
			kpix = 4
		}
		app = madbench.New(madbench.Config{Procs: *procs, KPix: kpix, FileType: ft, BusyWork: sim.Second})
	case "flashio":
		app = flashio.New(flashio.Config{Procs: *procs, Compute: 5 * sim.Second})
	default:
		fatal(fmt.Errorf("unknown app %q", *appName))
	}

	fmt.Printf("== Phase 1: characterization (application side) + Phase 3: evaluation ==\n")
	fmt.Printf("running %s ...\n\n", app.Name())
	rep, err := sess.Run(app)
	if err != nil {
		fatal(err)
	}
	ev := rep.Evaluation
	fmt.Println(core.FormatProfile(ev.AppName(), ev.Profile()))
	fmt.Println(core.FormatEvaluation(ev))
	if *spans {
		fmt.Println(core.FormatPathReport(ev.PathReport()))
	}
	if rep.Degraded != nil {
		fmt.Printf("== Phase 3 (degraded): evaluation under fault scenario %q ==\n", rep.Scenario)
		fmt.Println(core.FormatEvaluation(rep.Degraded))
		if *spans {
			fmt.Println(core.FormatPathReport(rep.Degraded.PathReport()))
		}
		fmt.Println("Healthy vs degraded:")
		fmt.Println(core.FormatUsedComparison(ev.Used(), rep.Degraded.Used()))
	}
	if *utilization {
		fmt.Println(rep.Utilization)
		if rep.Degraded != nil {
			fmt.Println("Utilization under fault scenario:")
			fmt.Println(rep.DegradedUtilization)
		}
	}
	if *metrics != "" {
		if err := ev.TelemetryReport().WriteFile(*metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("(telemetry report written to %s)\n", *metrics)
	}
}

func parseOrg(s string) (cluster.Organization, error) {
	switch s {
	case "jbod":
		return cluster.JBOD, nil
	case "raid1":
		return cluster.RAID1, nil
	case "raid5":
		return cluster.RAID5, nil
	}
	return 0, fmt.Errorf("unknown organization %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iomethod:", err)
	os.Exit(1)
}
