// Command madbench runs the MADbench2 benchmark on a simulated
// cluster and reports per-function times and transfer rates (S_w,
// W_w, W_r, C_r), like the real benchmark does.
//
// Usage:
//
//	madbench [-platform aohyper|clusterA] [-org jbod|raid1|raid5]
//	         [-procs 16] [-kpix 18] [-bins 8] [-filetype unique|shared]
//	         [-timeline] [-store DIR]
//
// With -store, the run is additionally evaluated against the cluster's
// characterization (looked up in — or computed into — the
// content-addressed store) and the used-percentage table is printed.
package main

import (
	"flag"
	"fmt"

	"ioeval/cmd/internal/cliutil"
	"ioeval/internal/core"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
	"ioeval/internal/workload/madbench"
)

func main() {
	platform := flag.String("platform", "aohyper", "cluster: aohyper or clusterA")
	orgName := flag.String("org", "raid5", "Aohyper device organization")
	procs := flag.Int("procs", 16, "MPI processes (square)")
	kpix := flag.Int("kpix", 18, "KPIX (pixels = KPIX x 1024)")
	bins := flag.Int("bins", 8, "component matrices")
	filetype := flag.String("filetype", "shared", "unique or shared")
	timeline := flag.Bool("timeline", false, "render the trace timeline")
	storeDir := cliutil.StoreFlag(flag.CommandLine)
	charWorkers := cliutil.CharWorkersFlag(flag.CommandLine)
	flag.Parse()

	org, err := cliutil.ParseOrg(*orgName)
	if err != nil {
		cliutil.Fatal(err)
	}
	build, err := cliutil.ClusterBuilder(*platform, org, 0)
	if err != nil {
		cliutil.Fatal(err)
	}
	c := build()

	ft := madbench.Shared
	if *filetype == "unique" {
		ft = madbench.Unique
	}
	cfg := madbench.Config{
		Procs: *procs, KPix: *kpix, Bins: *bins, FileType: ft, BusyWork: sim.Second,
	}
	app := madbench.New(cfg)
	tr := trace.New()
	fmt.Printf("running %s on %s (slice %s per op) ...\n\n",
		app.Name(), c.Cfg.Name, stats.IBytes(app.SliceBytes()))
	res, err := app.Run(c, tr)
	if err != nil {
		cliutil.Fatal(err)
	}

	var tb stats.Table
	tb.AddRow("metric", "value")
	tb.AddRow("execution time", res.ExecTime.String())
	tb.AddRow("I/O time", res.IOTime.String())
	for _, k := range []string{"S_w", "W_r", "W_w", "C_r"} {
		tb.AddRow(k+" rate", stats.MBs(res.PhaseRates[k]))
	}
	fmt.Println(tb.String())

	if *timeline {
		fmt.Println(trace.Timeline{Width: 110}.Render(tr.Events()))
	}

	st, err := cliutil.OpenStore(*storeDir)
	if err != nil {
		cliutil.Fatal(err)
	}
	if st != nil {
		sess := core.NewSession(build,
			core.WithStore(st),
			core.WithCharacterizeWorkers(*charWorkers),
			core.WithCharacterizeConfig(cliutil.CharConfig(true, false)))
		ev, err := sess.Evaluate(madbench.New(cfg))
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Println(core.FormatEvaluation(ev))
		fmt.Println(cliutil.StoreSummary(st))
	}
}
