// prediction demonstrates the paper's future-work goal, implemented
// in core: build a functional I/O model of an application from one
// traced run (its phase signature), then *predict* its I/O time on
// other characterized configurations and rank them — without running
// the application there. The prediction is validated against an
// actual run on the selected configuration.
//
// Run with: go run ./examples/prediction
package main

import (
	"fmt"
	"log"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/workload/btio"
)

func main() {
	charCfg := core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 << 10, 1 << 20, 4 << 20},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead, bench.RandWrite, bench.RandRead},
		LocalFileSize:  512 << 20,
		GlobalFileSize: 512 << 20,
		LibProcs:       4,
		LibBlockSizes:  []int64{1 << 20, 16 << 20},
		LibFileSize:    256 << 20,
		RandomOps:      1024,
	}

	// Characterize the three candidate configurations.
	orgs := []cluster.Organization{cluster.JBOD, cluster.RAID1, cluster.RAID5}
	chs := make([]*core.Characterization, 0, len(orgs))
	builders := map[string]func() *cluster.Cluster{}
	for _, org := range orgs {
		org := org
		build := func() *cluster.Cluster { return cluster.Aohyper(org) }
		sess := core.NewSession(build, core.WithCharacterizeConfig(charCfg))
		ch, err := sess.Characterization()
		if err != nil {
			log.Fatal(err)
		}
		chs = append(chs, ch)
		builders[ch.Config] = build
	}

	// Trace the application ONCE (on the first configuration) and
	// build its I/O model from the signature.
	app := btio.New(btio.Config{Class: btio.ClassA, Procs: 16, Subtype: btio.Full, ComputeScale: 1})
	ev, err := core.NewSession(builders[chs[0].Config], core.WithCharacterization(chs[0])).Evaluate(app)
	if err != nil {
		log.Fatal(err)
	}
	model := core.BuildModel(app.Name(), ev.Trace(), app.Procs())
	fmt.Printf("model built from one traced run on %s (%d phase patterns)\n\n",
		chs[0].Config, len(model.Phases))

	// Predict and rank all configurations.
	ranked := core.SelectConfiguration(model, chs)
	fmt.Println("Configurations ranked by predicted I/O time:")
	for i, pred := range ranked {
		fmt.Printf("  %d. %-16s predicted I/O time %v\n", i+1, pred.Config, pred.IOTime)
	}
	fmt.Println()
	fmt.Println(core.FormatPrediction(ranked[0]))

	// Validate: actually run on the selected configuration.
	best := ranked[0]
	var bestCh *core.Characterization
	for _, ch := range chs {
		if ch.Config == best.Config {
			bestCh = ch
		}
	}
	actual, err := core.NewSession(builders[best.Config], core.WithCharacterization(bestCh)).Evaluate(app)
	if err != nil {
		log.Fatal(err)
	}
	ratio := float64(best.IOTime) / float64(actual.Result().IOTime)
	fmt.Printf("\nvalidation on %s: predicted %v vs measured %v (ratio %.2f)\n",
		best.Config, best.IOTime, actual.Result().IOTime, ratio)
	fmt.Println(`The model only knows the characterized rate tables, so it cannot see
cache wins (used% > 100) — predictions are conservative. Its value is
the *ranking*: selecting the configuration before committing to it,
which is exactly the methodology's stated purpose.`)
}
