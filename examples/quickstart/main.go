// Quickstart: the methodology in ~60 lines.
//
//  1. Build a simulated cluster (the paper's Aohyper, RAID 5).
//  2. Characterize its I/O path (reduced sweep for speed).
//  3. Run an application (NAS BT-IO class A) under the tracer.
//  4. Print the evaluation: where on the I/O path the application
//     sits, and how much of each level's capacity it obtains.
//
// Run with: go run ./examples/quickstart
//
// Warm starts: pass -store DIR and run twice. The first run measures
// the characterization and persists it; the second reads the tables
// back (the store summary line shows "1 hits, 0 misses") and prints
// identical output — Phase 1 survives the process.
//
//	go run ./examples/quickstart -store /tmp/ioeval-store
//	go run ./examples/quickstart -store /tmp/ioeval-store
package main

import (
	"flag"
	"fmt"
	"log"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/store"
	"ioeval/internal/workload/btio"
)

func main() {
	storeDir := flag.String("store", "", "persist characterizations in this directory (warm starts)")
	flag.Parse()

	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }

	// Phase 1 (system): characterize each I/O-path level with a
	// reduced IOzone/IOR sweep.
	cfg := core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 << 10, 1 << 20, 4 << 20},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  512 << 20,
		GlobalFileSize: 512 << 20,
		LibProcs:       4,
		LibBlockSizes:  []int64{4 << 20, 32 << 20},
		LibFileSize:    256 << 20,
	}
	opts := []core.SessionOption{core.WithCharacterizeConfig(cfg)}
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			log.Fatal(err)
		}
		opts = append(opts, core.WithStore(st))
	}
	sess := core.NewSession(build, opts...)
	ch, err := sess.Characterization()
	if err != nil {
		log.Fatal(err)
	}
	for _, level := range core.Levels() {
		fmt.Println(core.FormatPerfTable(ch.Table(level)))
	}

	// Phase 2: what is configurable on this cluster?
	fmt.Println("Configurable factors:")
	fmt.Println(core.AnalyzeConfiguration(build()))

	// Phases 1 (application) + 3: run NAS BT-IO and evaluate it
	// against the characterized tables.
	app := btio.New(btio.Config{Class: btio.ClassA, Procs: 4, Subtype: btio.Full, ComputeScale: 1})
	ev, err := sess.Evaluate(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.FormatProfile(ev.AppName(), ev.Profile()))
	fmt.Println(core.FormatEvaluation(ev))

	if st != nil {
		s := st.Stats()
		fmt.Printf("store %s: %d hits, %d misses, %d writes\n",
			st.Dir(), s.Hits, s.Misses, s.Puts)
	}
}
