// Quickstart: the methodology in ~60 lines.
//
//  1. Build a simulated cluster (the paper's Aohyper, RAID 5).
//  2. Characterize its I/O path (reduced sweep for speed).
//  3. Run an application (NAS BT-IO class A) under the tracer.
//  4. Print the evaluation: where on the I/O path the application
//     sits, and how much of each level's capacity it obtains.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/workload/btio"
)

func main() {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }

	// Phase 1 (system): characterize each I/O-path level with a
	// reduced IOzone/IOR sweep.
	cfg := core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 << 10, 1 << 20, 4 << 20},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  512 << 20,
		GlobalFileSize: 512 << 20,
		LibProcs:       4,
		LibBlockSizes:  []int64{4 << 20, 32 << 20},
		LibFileSize:    256 << 20,
	}
	sess := core.NewSession(build, core.WithCharacterizeConfig(cfg))
	ch, err := sess.Characterization()
	if err != nil {
		log.Fatal(err)
	}
	for _, level := range core.Levels() {
		fmt.Println(core.FormatPerfTable(ch.Table(level)))
	}

	// Phase 2: what is configurable on this cluster?
	fmt.Println("Configurable factors:")
	fmt.Println(core.AnalyzeConfiguration(build()))

	// Phases 1 (application) + 3: run NAS BT-IO and evaluate it
	// against the characterized tables.
	app := btio.New(btio.Config{Class: btio.ClassA, Procs: 4, Subtype: btio.Full, ComputeScale: 1})
	ev, err := sess.Evaluate(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.FormatProfile(ev.AppName(), ev.Profile()))
	fmt.Println(core.FormatEvaluation(ev))
}
