// synth-workload walks through the declarative synthetic-workload
// plane: load a phase-graph spec from JSON, compile and evaluate it
// with the same methodology pipeline the hand-coded apps use, check
// it reproduces the hand-coded BT-IO evaluation exactly, and close
// the loop by inferring a runnable spec back from a captured trace.
//
// The committed spec files in this directory are the hand-coded apps
// re-expressed in the DSL (emitted by `iosynth -emit ... -quick`);
// a test keeps them in sync with the generators.
//
// Run with: go run ./examples/synth-workload
package main

import (
	"fmt"
	"log"
	"reflect"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/trace"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/synth"
)

func main() {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	charCfg := core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 << 10, 1 << 20, 4 << 20},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  512 << 20,
		GlobalFileSize: 512 << 20,
		LibProcs:       4,
		LibBlockSizes:  []int64{4 << 20, 32 << 20},
		LibTransfer:    256 << 10,
		LibFileSize:    256 << 20,
		RandomOps:      128,
	}
	sess := core.NewSession(build, core.WithCharacterizeConfig(charCfg))
	ch, err := sess.Characterization()
	if err != nil {
		log.Fatal(err)
	}

	// 1. A spec file is a complete workload: parse, compile, evaluate.
	spec, err := synth.LoadSpec("examples/synth-workload/btio-full.json")
	if err != nil {
		log.Fatal(err)
	}
	app, err := synth.Compile(spec)
	if err != nil {
		log.Fatal(err)
	}
	declR, declW := spec.DeclaredBytes()
	fmt.Printf("spec %q: %d ranks, %d phases, declares %d B read / %d B written\n\n",
		app.Name(), spec.Procs, len(spec.Phases), declR, declW)
	evSynth, err := core.NewSession(build, core.WithCharacterization(ch)).Evaluate(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.FormatEvaluation(evSynth))

	// 2. Differential conformance: the spec re-expresses hand-coded
	// BT-IO, so the evaluations must be identical — same io-time, same
	// byte counts, same used-% verdict.
	cfg := btio.Config{Class: btio.ClassA, Procs: 4, Subtype: btio.Full, ComputeScale: 1}
	evHand, err := core.NewSession(build, core.WithCharacterization(ch)).Evaluate(btio.New(cfg))
	if err != nil {
		log.Fatal(err)
	}
	if core.FormatEvaluation(evHand) == core.FormatEvaluation(evSynth) {
		fmt.Println("conformance: synthetic evaluation == hand-coded evaluation")
	} else {
		fmt.Println("conformance: DIVERGED (this is a bug)")
	}

	// 3. Trace → spec inference: capture the hand-coded app's timeline
	// and derive a replayable spec from it.
	tr := trace.New()
	if _, err := btio.New(cfg).Run(build(), tr); err != nil {
		log.Fatal(err)
	}
	inferred, err := trace.InferSpec(tr, "btio-inferred")
	if err != nil {
		log.Fatal(err)
	}
	replay, err := synth.Compile(inferred)
	if err != nil {
		log.Fatal(err)
	}
	tr2 := trace.New()
	if _, err := replay.Run(build(), tr2); err != nil {
		log.Fatal(err)
	}
	p1, p2 := tr.Profile(), tr2.Profile()
	p1.ExecTime, p2.ExecTime = 0, 0
	p1.IOTime, p2.IOTime = 0, 0
	fmt.Printf("inference: %d events -> %d-phase spec -> replay profile matches: %v\n",
		len(tr.Events()), len(inferred.Phases), reflect.DeepEqual(p1, p2))
}
