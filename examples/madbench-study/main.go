// madbench-study reproduces the paper's MADbench2 investigation on the
// cluster Aohyper (Section IV-F): run the benchmark with UNIQUE and
// SHARED filetypes on the three device configurations and report the
// per-function transfer rates (Fig. 17) plus the local-filesystem
// used percentages (Table IX).
//
// A reduced KPIX keeps this example quick; the bench harness runs the
// paper's 18 KPIX.
//
// Run with: go run ./examples/madbench-study
package main

import (
	"fmt"
	"log"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
	"ioeval/internal/workload/madbench"
)

func main() {
	charCfg := core.CharacterizeConfig{
		FSBlockSizes:   []int64{256 << 10, 4 << 20, 16 << 20},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  512 << 20,
		GlobalFileSize: 512 << 20,
		LibProcs:       4,
		LibBlockSizes:  []int64{4 << 20, 32 << 20},
		LibFileSize:    256 << 20,
	}

	var rates, used stats.Table
	rates.AddRow("config", "filetype", "S_w", "W_w", "W_r", "C_r")
	used.AddRow("I/O configuration", "W_r", "C_r", "S_w", "W_w", "FILETYPE")

	for _, org := range []cluster.Organization{cluster.JBOD, cluster.RAID1, cluster.RAID5} {
		build := func() *cluster.Cluster { return cluster.Aohyper(org) }
		sess := core.NewSession(build, core.WithCharacterizeConfig(charCfg))
		ch, err := sess.Characterization()
		if err != nil {
			log.Fatal(err)
		}
		for _, ft := range []madbench.FileType{madbench.Unique, madbench.Shared} {
			app := madbench.New(madbench.Config{
				Procs: 16, KPix: 6, Bins: 8, FileType: ft, BusyWork: sim.Second / 2,
			})
			ev, err := sess.Evaluate(app)
			if err != nil {
				log.Fatal(err)
			}
			pr := ev.Result().PhaseRates
			rates.AddRow(org.String(), ft.String(),
				stats.MBs(pr["S_w"]), stats.MBs(pr["W_w"]), stats.MBs(pr["W_r"]), stats.MBs(pr["C_r"]))

			// Table IX: per-function used % of the local-FS level, at the
			// application's block size, sequential mode (whole-slice ops).
			bs := app.SliceBytes()
			lookup := func(op core.OpType) float64 {
				rate, _, ok := ch.Table(core.LevelLocalFS).Lookup(op, bs, core.Local, trace.Sequential)
				if !ok {
					return -1
				}
				return rate
			}
			pcts := func(op core.OpType, measured float64) string {
				char := lookup(op)
				if char <= 0 {
					return "n/a"
				}
				return fmt.Sprintf("%.1f", measured/char*100)
			}
			used.AddRow(org.String(),
				pcts(core.Read, pr["W_r"]), pcts(core.Read, pr["C_r"]),
				pcts(core.Write, pr["S_w"]), pcts(core.Write, pr["W_w"]), ft.String())
		}
	}

	fmt.Println("MADbench2 per-function transfer rates (Fig. 17 analogue)")
	fmt.Println(rates.String())
	fmt.Println("% of use on the local filesystem level (Table IX analogue)")
	fmt.Println(used.String())
	fmt.Println(`As in the paper: MADbench2 moves whole matrix slices per operation, so
it drives the network filesystem at (or beyond) its characterized
capacity; at the local-filesystem level the used fraction falls as the
array gets faster — the application cannot saturate RAID 5's extra
spindles through one Gigabit NFS path. The per-function view shows the
same configuration behaving differently across the S, W and C phases.`)
}
