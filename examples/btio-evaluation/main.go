// btio-evaluation walks through the paper's Section III/IV study on
// the cluster Aohyper: characterize the three device configurations
// (JBOD, RAID 1, RAID 5), run NAS BT-IO in both subtypes on each, and
// reproduce the used-percentage comparison of Tables III/IV and the
// execution-time picture of Fig. 12.
//
// Class A is used so the walk-through finishes in seconds; switch to
// btio.ClassC for the paper-scale run (the bench harness does).
//
// Run with: go run ./examples/btio-evaluation
package main

import (
	"fmt"
	"log"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/stats"
	"ioeval/internal/workload/btio"
)

func main() {
	charCfg := core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 << 10, 1 << 20, 4 << 20},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead, bench.RandWrite, bench.RandRead},
		LocalFileSize:  512 << 20,
		GlobalFileSize: 512 << 20,
		LibProcs:       4,
		LibBlockSizes:  []int64{1 << 20, 16 << 20},
		LibFileSize:    256 << 20,
		RandomOps:      1024,
	}

	var usedW, usedR, runsTbl stats.Table
	usedW.AddRow("I/O configuration", "I/O Lib", "NFS", "Local FS", "SUBTYPE")
	usedR.AddRow("I/O configuration", "I/O Lib", "NFS", "Local FS", "SUBTYPE")
	runsTbl.AddRow("config", "subtype", "exec", "I/O time", "throughput")

	for _, org := range []cluster.Organization{cluster.JBOD, cluster.RAID1, cluster.RAID5} {
		build := func() *cluster.Cluster { return cluster.Aohyper(org) }
		sess := core.NewSession(build, core.WithCharacterizeConfig(charCfg))
		for _, st := range []btio.Subtype{btio.Full, btio.Simple} {
			app := btio.New(btio.Config{Class: btio.ClassA, Procs: 16, Subtype: st, ComputeScale: 1})
			ev, err := sess.Evaluate(app)
			if err != nil {
				log.Fatal(err)
			}
			usedW.AddRow(org.String(), pct(ev.UsedFor(core.LevelIOLib, core.Write)),
				pct(ev.UsedFor(core.LevelNFS, core.Write)),
				pct(ev.UsedFor(core.LevelLocalFS, core.Write)), st.String())
			usedR.AddRow(org.String(), pct(ev.UsedFor(core.LevelIOLib, core.Read)),
				pct(ev.UsedFor(core.LevelNFS, core.Read)),
				pct(ev.UsedFor(core.LevelLocalFS, core.Read)), st.String())
			res := ev.Result()
			runsTbl.AddRow(org.String(), st.String(),
				fmt.Sprintf("%.1f s", res.ExecTime.Seconds()),
				fmt.Sprintf("%.1f s", res.IOTime.Seconds()),
				stats.MBs(res.Throughput()))
		}
	}

	fmt.Println("% of I/O system use — writing operations (Table III analogue)")
	fmt.Println(usedW.String())
	fmt.Println("% of I/O system use — reading operations (Table IV analogue)")
	fmt.Println(usedR.String())
	fmt.Println("Execution & I/O time (Fig. 12 analogue)")
	fmt.Println(runsTbl.String())
	fmt.Println(`Reading the result like the paper does: the full subtype exploits the
I/O system's capacity (used% near or above 100 at the library level),
while the simple subtype's access pattern — millions of ~KB strided
records — caps it at a small fraction. The full subtype performs
similarly on all three configurations, so choosing among JBOD, RAID 1
and RAID 5 is a question of the availability level the user pays for.`)
}

func pct(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", v)
}
