// custom-app shows the extension point downstream users care about:
// evaluating *your own* application's I/O behaviour with the
// methodology. It defines a checkpoint/restart workload — every rank
// periodically dumps its state with independent large writes, then a
// restart phase reads the latest checkpoint back — and runs the full
// characterize/evaluate flow on it.
//
// Run with: go run ./examples/custom-app
package main

import (
	"fmt"
	"log"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fs"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/workload"
)

// checkpointer is a user-defined workload.App: compute for a while,
// dump rank state, repeat; finally restart-read the last checkpoint.
type checkpointer struct {
	procs     int
	stateSize int64 // per-rank checkpoint bytes
	rounds    int
	compute   sim.Duration
}

func (a *checkpointer) Name() string {
	return fmt.Sprintf("checkpointer (%d procs, %d rounds)", a.procs, a.rounds)
}

func (a *checkpointer) Procs() int { return a.procs }

func (a *checkpointer) Run(c *cluster.Cluster, tr mpiio.Tracer) (workload.Result, error) {
	w := c.NewWorld(c.RankNodes(a.procs))
	w.SetTracer(tr)
	f := mpiio.OpenFile(w, "/checkpoint.dat", fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
		c.NFSMounts(a.procs), mpiio.DefaultHints())

	writeTimes := make([]sim.Duration, a.procs)
	readTimes := make([]sim.Duration, a.procs)
	var openErr error
	for rank := 0; rank < a.procs; rank++ {
		rank := rank
		c.Eng.Spawn(fmt.Sprintf("ckpt-r%d", rank), func(p *sim.Proc) {
			if err := f.Open(p, rank); err != nil {
				openErr = err
				return
			}
			off := int64(rank) * a.stateSize
			for round := 0; round < a.rounds; round++ {
				w.Compute(p, rank, a.compute)
				t0 := p.Now()
				// Collective checkpoint write: all ranks dump together.
				f.WriteAtAll(p, rank, off, a.stateSize)
				writeTimes[rank] += sim.Duration(p.Now() - t0)
				w.Barrier(p, rank)
			}
			// Restart: read the checkpoint back.
			t0 := p.Now()
			f.ReadAtAll(p, rank, off, a.stateSize)
			readTimes[rank] += sim.Duration(p.Now() - t0)
			f.Close(p, rank)
		})
	}
	end := c.Eng.Run()
	if openErr != nil {
		return workload.Result{}, openErr
	}
	res := workload.Result{ExecTime: sim.Duration(end)}
	for r := 0; r < a.procs; r++ {
		if writeTimes[r] > res.WriteTime {
			res.WriteTime = writeTimes[r]
		}
		if readTimes[r] > res.ReadTime {
			res.ReadTime = readTimes[r]
		}
		if t := writeTimes[r] + readTimes[r]; t > res.IOTime {
			res.IOTime = t
		}
	}
	res.BytesWritten = int64(a.rounds) * a.stateSize * int64(a.procs)
	res.BytesRead = a.stateSize * int64(a.procs)
	return res, nil
}

func main() {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	sess := core.NewSession(build, core.WithCharacterizeConfig(core.CharacterizeConfig{
		FSBlockSizes:   []int64{1 << 20, 16 << 20},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  512 << 20,
		GlobalFileSize: 512 << 20,
		LibProcs:       4,
		LibBlockSizes:  []int64{16 << 20},
		LibFileSize:    256 << 20,
	}))

	app := &checkpointer{procs: 8, stateSize: 64 << 20, rounds: 10, compute: 5 * sim.Second}
	ev, err := sess.Evaluate(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.FormatProfile(ev.AppName(), ev.Profile()))
	fmt.Println(core.FormatEvaluation(ev))
	fmt.Println(`If the checkpoint used-percentage at the library level is near 100,
the I/O system is the limit and the fix is architectural (faster
storage path, more I/O nodes); if it is low, the fix is in the
application's access pattern — exactly the decision the methodology
is designed to support.`)
}
