// Package ioeval reproduces "Methodology for Performance Evaluation
// of the Input/Output System on Computer Clusters" (Méndez, Rexachs,
// Luque; IEEE CLUSTER 2011) as a self-contained Go library: a
// discrete-event cluster I/O simulator (disks, RAID, page caches,
// Gigabit Ethernet, NFS, an MPI-IO analogue), the paper's two
// application workloads (NAS BT-IO and MADbench2), the
// characterization benchmarks (IOzone-, IOR- and bonnie++-like), and
// the methodology itself (internal/core): per-level performance
// tables, the table-search algorithm, used-percentage generation and
// the three-phase evaluation flow.
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for paper-vs-measured shapes.
package ioeval
