// Shape assertions for every reproduced artifact: the absolute
// numbers come from a simulated substrate, but who wins, by roughly
// what factor, and where the crossovers fall must match the paper.
// These tests share the memoized experiment results with the bench
// harness.
package ioeval

import (
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/experiments"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
)

const wireMBs = 117.0 // effective GigE ceiling

func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment reproduction skipped in -short mode")
	}
}

// --- Fig. 5 / Fig. 13 --------------------------------------------------

func TestShapeFig5(t *testing.T) {
	skipShort(t)
	pts := experiments.Fig5Data()
	if len(pts) == 0 {
		t.Fatal("no fig5 points")
	}
	first := map[string]float64{}
	last := map[string]float64{}
	raid5Read16M, jbodRead16M := 0.0, 0.0
	for _, p := range pts {
		key := p.Org.String() + "/" + p.Level.String() + "/" + p.Mode.String()
		if _, ok := first[key]; !ok {
			first[key] = p.RateMBs // smallest block (sweep order)
		}
		last[key] = p.RateMBs // largest block
		if p.Level == core.LevelNFS && p.RateMBs > wireMBs {
			t.Errorf("NFS rate %.1f MB/s beats the wire (%s, %v, bs=%d)",
				p.RateMBs, p.Org, p.Mode, p.BlockSize)
		}
		if p.Level == core.LevelLocalFS && p.Mode == bench.SeqRead && p.BlockSize == 16<<20 {
			switch p.Org {
			case cluster.RAID5:
				raid5Read16M = p.RateMBs
			case cluster.JBOD:
				jbodRead16M = p.RateMBs
			}
		}
	}
	// Multi-spindle RAID 5 must beat the single JBOD disk for large
	// sequential local reads.
	if raid5Read16M <= jbodRead16M {
		t.Errorf("RAID5 local read (%.1f) not above JBOD (%.1f)", raid5Read16M, jbodRead16M)
	}
	// Per-op overheads amortize: the largest block is at least as fast
	// as the smallest on every curve.
	for key := range first {
		if last[key] < first[key]*0.9 {
			t.Errorf("curve %s falls with block size: %.1f -> %.1f MB/s", key, first[key], last[key])
		}
	}
}

func TestShapeFig6(t *testing.T) {
	skipShort(t)
	pts := experiments.Fig6Data()
	if len(pts) == 0 {
		t.Fatal("no fig6 points")
	}
	byOrg := map[cluster.Organization][]experiments.Fig6Point{}
	for _, p := range pts {
		if p.WriteMBs <= 0 || p.ReadMBs <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.WriteMBs > wireMBs || p.ReadMBs > wireMBs {
			t.Errorf("library rate beats wire: %+v", p)
		}
		byOrg[p.Org] = append(byOrg[p.Org], p)
	}
	// Rates rise (or hold) from the smallest to the largest block.
	for org, series := range byOrg {
		if series[len(series)-1].WriteMBs < series[0].WriteMBs*0.9 {
			t.Errorf("%v: library write rate falls with block size", org)
		}
	}
}

// --- Table II / Table V -------------------------------------------------

func TestShapeTable2(t *testing.T) {
	skipShort(t)
	full := experiments.EvalBTIO(experiments.Aohyper, cluster.RAID5, 16, btio.Full)
	simple := experiments.EvalBTIO(experiments.Aohyper, cluster.RAID5, 16, btio.Simple)

	// full: 640 collective writes and reads (40 dumps × 16 procs).
	if full.Profile().NumWrites != 640 || full.Profile().NumReads != 640 {
		t.Errorf("full ops: w=%d r=%d, want 640", full.Profile().NumWrites, full.Profile().NumReads)
	}
	// full block ≈ 10.4 MiB per collective call.
	fb := full.Profile().WriteBlockSizes[0].Bytes
	if fb < 10<<20 || fb > 11<<20 {
		t.Errorf("full write block = %d, want ~10.4 MiB", fb)
	}
	// simple: 4,199,040 operations each way, in 1600- and 1640-byte
	// records.
	if simple.Profile().NumWrites != 4199040 || simple.Profile().NumReads != 4199040 {
		t.Errorf("simple ops: w=%d r=%d, want 4199040", simple.Profile().NumWrites, simple.Profile().NumReads)
	}
	sizes := map[int64]bool{}
	for _, s := range simple.Profile().WriteBlockSizes {
		sizes[s.Bytes] = true
	}
	// Vector events report the mean record size, which sits between
	// the 1600- and 1640-byte records.
	for b := range sizes {
		if b < 1600 || b > 1640 {
			t.Errorf("simple record size %d outside [1600,1640]", b)
		}
	}
	if full.Profile().NumFiles != 1 || simple.Profile().NumFiles != 1 {
		t.Error("BT-IO must use a single shared file")
	}
}

func TestShapeTable5(t *testing.T) {
	skipShort(t)
	full := experiments.EvalBTIO(experiments.ClusterA, cluster.RAID5, 64, btio.Full)
	simple := experiments.EvalBTIO(experiments.ClusterA, cluster.RAID5, 64, btio.Simple)
	if full.Profile().NumWrites != 2560 { // 40 dumps × 64 procs
		t.Errorf("full 64p writes = %d, want 2560", full.Profile().NumWrites)
	}
	fb := full.Profile().WriteBlockSizes[0].Bytes
	if fb < 2<<20 || fb > 3<<20 {
		t.Errorf("full 64p block = %d, want ~2.6 MiB", fb)
	}
	for _, s := range simple.Profile().WriteBlockSizes {
		if s.Bytes < 800 || s.Bytes > 840 {
			t.Errorf("simple 64p record size %d outside [800,840]", s.Bytes)
		}
	}
}

// --- Tables III/IV + Fig. 12 -------------------------------------------

func TestShapeTables3and4(t *testing.T) {
	skipShort(t)
	for _, org := range experiments.AohyperOrgs {
		full := experiments.EvalBTIO(experiments.Aohyper, org, 16, btio.Full)
		simple := experiments.EvalBTIO(experiments.Aohyper, org, 16, btio.Simple)

		fw := full.UsedFor(core.LevelIOLib, core.Write)
		sw := simple.UsedFor(core.LevelIOLib, core.Write)
		fr := full.UsedFor(core.LevelIOLib, core.Read)
		sr := simple.UsedFor(core.LevelIOLib, core.Read)
		if fw <= 0 || sw <= 0 || fr <= 0 || sr <= 0 {
			t.Fatalf("%v: missing used%%: fw=%v sw=%v fr=%v sr=%v", org, fw, sw, fr, sr)
		}
		// The paper's headline: full exploits the I/O system; simple
		// reaches <15% on writes and ~30% on reads.
		if fw < 2*sw {
			t.Errorf("%v: full write used%% (%.1f) not ≫ simple (%.1f)", org, fw, sw)
		}
		swNFS := simple.UsedFor(core.LevelNFS, core.Write)
		srNFS := simple.UsedFor(core.LevelNFS, core.Read)
		// Paper: "less than 15% on writing operations" and "about 30% on
		// reading". The slower arrays characterize lower, so their used
		// fraction lands slightly higher; a 20% ceiling holds the claim's
		// substance across all three configurations (RAID 5 lands ~12%).
		if swNFS >= 20 {
			t.Errorf("%v: simple write used%% at NFS level = %.1f, paper says <15", org, swNFS)
		}
		if srNFS < 20 || srNFS > 50 {
			t.Errorf("%v: simple read used%% = %.1f, paper says about 30", org, srNFS)
		}
		if srNFS <= swNFS {
			t.Errorf("%v: simple reads (%.1f%%) should exploit more than writes (%.1f%%)", org, srNFS, swNFS)
		}
	}
}

func TestShapeFig12(t *testing.T) {
	skipShort(t)
	rows := experiments.Fig12Data()
	exec := map[string]map[string]float64{"FULL": {}, "SIMPLE": {}}
	ioT := map[string]map[string]float64{"FULL": {}, "SIMPLE": {}}
	for _, r := range rows {
		exec[r.Subtype][r.Label] = r.ExecSec
		ioT[r.Subtype][r.Label] = r.IOSec
	}
	for _, org := range experiments.AohyperOrgs {
		o := org.String()
		if exec["SIMPLE"][o] <= exec["FULL"][o] {
			t.Errorf("%s: simple exec (%.1f) not above full (%.1f)", o, exec["SIMPLE"][o], exec["FULL"][o])
		}
		if ioT["SIMPLE"][o] <= 2*ioT["FULL"][o] {
			t.Errorf("%s: simple I/O time (%.1f) not ≫ full (%.1f)", o, ioT["SIMPLE"][o], ioT["FULL"][o])
		}
	}
	// "the full subtype has similar performance on the three
	// configurations" — spread within 1.5×.
	var lo, hi float64
	for _, org := range experiments.AohyperOrgs {
		v := exec["FULL"][org.String()]
		if lo == 0 || v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 1.5*lo {
		t.Errorf("full exec spread across configs too wide: %.1f .. %.1f s", lo, hi)
	}
}

// --- Tables VI/VII + Fig. 15 -------------------------------------------

func TestShapeTables6and7(t *testing.T) {
	skipShort(t)
	for _, procs := range []int{16, 64} {
		full := experiments.EvalBTIO(experiments.ClusterA, cluster.RAID5, procs, btio.Full)
		simple := experiments.EvalBTIO(experiments.ClusterA, cluster.RAID5, procs, btio.Simple)
		fw := full.UsedFor(core.LevelIOLib, core.Write)
		sw := simple.UsedFor(core.LevelIOLib, core.Write)
		if fw < 2*sw {
			t.Errorf("%dp: full lib write used%% (%.1f) not ≫ simple (%.1f)", procs, fw, sw)
		}
		// "NAS BT-IO simple ... I/O time is greater than 90% of the run
		// time" on cluster A.
		ratio := float64(simple.Result().IOTime) / float64(simple.Result().ExecTime)
		if ratio < 0.90 {
			t.Errorf("%dp: simple I/O fraction = %.2f, paper says >0.90", procs, ratio)
		}
	}
}

func TestShapeFig15(t *testing.T) {
	skipShort(t)
	rows := experiments.Fig15Data()
	io16, io64 := 0.0, 0.0
	for _, r := range rows {
		if r.Subtype == "FULL" {
			if r.Label == "16 procs" {
				io16 = r.IOSec
			} else {
				io64 = r.IOSec
			}
		}
	}
	// The paper observes full-subtype I/O time increasing with more
	// processes; our model keeps it roughly level (the server NIC is
	// the binding constraint either way) — assert it does not shrink
	// materially. EXPERIMENTS.md records this partial deviation.
	if io64 < 0.85*io16 {
		t.Errorf("full I/O time at 64p (%.1f) well below 16p (%.1f)", io64, io16)
	}
}

// --- Table VIII ----------------------------------------------------------

func TestShapeTable8(t *testing.T) {
	skipShort(t)
	for _, procs := range []int{16, 64} {
		for _, ft := range []madbench.FileType{madbench.Unique, madbench.Shared} {
			ev := experiments.EvalMadBench(experiments.ClusterA, cluster.RAID5, procs, ft)
			wantOps := int64(16 * procs) // 16 writes + 16 reads per proc
			if ev.Profile().NumWrites != wantOps || ev.Profile().NumReads != wantOps {
				t.Errorf("%dp %v: ops w=%d r=%d, want %d",
					procs, ft, ev.Profile().NumWrites, ev.Profile().NumReads, wantOps)
			}
			wantFiles := 1
			if ft == madbench.Unique {
				wantFiles = procs
			}
			if ev.Profile().NumFiles != wantFiles {
				t.Errorf("%dp %v: files=%d want %d", procs, ft, ev.Profile().NumFiles, wantFiles)
			}
			wantBlock := int64(162 << 20)
			if procs == 64 {
				wantBlock = 162 << 20 / 4 // 40.5 MiB
			}
			if got := ev.Profile().WriteBlockSizes[0].Bytes; got != wantBlock {
				t.Errorf("%dp %v: block=%d want %d", procs, ft, got, wantBlock)
			}
		}
	}
}

// --- Fig. 17 + Table IX ---------------------------------------------------

func TestShapeTable9(t *testing.T) {
	skipShort(t)
	rows := experiments.Table9Data()
	// Column S_w: the used fraction of the local-FS level must fall
	// as the array gets faster: JBOD > RAID1 > RAID5 (the paper's
	// ~full / ~50% / ~30% ladder).
	col := map[string]float64{}
	for _, r := range rows {
		if r.FileType == "SHARED" {
			col[r.Config] = r.Sw
		}
	}
	// The faster the array, the smaller the fraction the application
	// can use of it: RAID 5 (5 spindles) sits well below the
	// single-disk JBOD and the mirrored pair (the paper's ~full /
	// ~50% / ~30% ladder; JBOD and RAID 1 write at single-disk speed
	// and may tie).
	if !(col["RAID5"] < col["JBOD"] && col["RAID5"] < col["RAID1"]) {
		t.Errorf("S_w used%% ladder broken: JBOD=%.1f RAID1=%.1f RAID5=%.1f",
			col["JBOD"], col["RAID1"], col["RAID5"])
	}
}

func TestShapeFig17(t *testing.T) {
	skipShort(t)
	rows := experiments.Fig17Data()
	// "the most suitable configuration is RAID 5 because this I/O
	// configuration provides higher transfer rate": RAID5 S_w at least
	// matches JBOD.
	rates := map[string]float64{}
	for _, r := range rows {
		if r.FileType == "SHARED" {
			rates[r.Config] = r.SwMBs
		}
	}
	if rates["RAID5"] < rates["JBOD"]*0.9 {
		t.Errorf("RAID5 S_w (%.1f MB/s) below JBOD (%.1f MB/s)", rates["RAID5"], rates["JBOD"])
	}
}

// --- Fig. 18 + Tables X/XI -------------------------------------------------

func TestShapeTables10and11(t *testing.T) {
	skipShort(t)
	ev16 := experiments.EvalMadBench(experiments.ClusterA, cluster.RAID5, 16, madbench.Unique)
	ev64 := experiments.EvalMadBench(experiments.ClusterA, cluster.RAID5, 64, madbench.Unique)
	// "the reading operations are done on buffer/cache and not
	// physically on the disk" for 64p UNIQUE: W reads must run at
	// least as fast as at 16p (per-proc slices fit server RAM).
	if ev64.Result().PhaseRates["W_r"] < ev16.Result().PhaseRates["W_r"]*0.9 {
		t.Errorf("W_r at 64p (%.1f MB/s) fell below 16p (%.1f MB/s)",
			ev64.Result().PhaseRates["W_r"]/1e6, ev16.Result().PhaseRates["W_r"]/1e6)
	}
	// "the I/O system is used almost to capacity with 64 processes":
	// NFS-level write rate near the wire.
	if ev64.Result().PhaseRates["S_w"]/1e6 < 0.5*wireMBs {
		t.Errorf("64p S_w = %.1f MB/s, want near wire capacity", ev64.Result().PhaseRates["S_w"]/1e6)
	}
}

func TestShapeFig16Timeline(t *testing.T) {
	skipShort(t)
	a := experiments.Fig16()
	if len(a.Text) == 0 {
		t.Fatal("empty timeline")
	}
}
